// Copyright 2026 The pkgstream Authors.
// Unit tests for PARTIAL KEY GROUPING and the load estimators — the paper's
// core claims at unit granularity.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "partition/load_estimator.h"
#include "partition/pkg.h"
#include "stats/imbalance.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace partition {
namespace {

std::unique_ptr<PartialKeyGrouping> MakePkgGlobal(uint32_t workers,
                                                  uint32_t d = 2,
                                                  uint64_t seed = 42) {
  PkgOptions options;
  options.num_choices = d;
  options.hash_seed = seed;
  return std::make_unique<PartialKeyGrouping>(
      1, workers, std::make_unique<GlobalLoadEstimator>(1, workers), options);
}

TEST(PkgTest, RoutesWithinCandidates) {
  auto pkg = MakePkgGlobal(10);
  std::vector<WorkerId> candidates;
  for (Key k = 0; k < 1000; ++k) {
    pkg->CandidateWorkers(k, &candidates);
    ASSERT_EQ(candidates.size(), 2u);
    WorkerId w = pkg->Route(0, k);
    EXPECT_TRUE(w == candidates[0] || w == candidates[1])
        << "key " << k << " routed outside its candidate set";
  }
}

TEST(PkgTest, KeySplittingUsesBothCandidates) {
  // A single hot key must alternate between its two candidates (that is the
  // point of key splitting).
  auto pkg = MakePkgGlobal(10);
  std::set<WorkerId> used;
  for (int i = 0; i < 100; ++i) used.insert(pkg->Route(0, /*key=*/7));
  std::vector<WorkerId> candidates;
  pkg->CandidateWorkers(7, &candidates);
  std::set<WorkerId> expected(candidates.begin(), candidates.end());
  EXPECT_EQ(used, expected);
}

TEST(PkgTest, SingleHotKeySplitsEvenly) {
  auto pkg = MakePkgGlobal(10);
  std::vector<uint64_t> loads(10, 0);
  for (int i = 0; i < 1000; ++i) ++loads[pkg->Route(0, 7)];
  std::vector<WorkerId> candidates;
  pkg->CandidateWorkers(7, &candidates);
  if (candidates[0] != candidates[1]) {
    EXPECT_EQ(loads[candidates[0]], 500u);
    EXPECT_EQ(loads[candidates[1]], 500u);
  }
}

TEST(PkgTest, MaxWorkersPerKeyIsD) {
  EXPECT_EQ(MakePkgGlobal(10, 2)->MaxWorkersPerKey(), 2u);
  EXPECT_EQ(MakePkgGlobal(10, 3)->MaxWorkersPerKey(), 3u);
}

TEST(PkgTest, DOneDegeneratesToHashing) {
  auto pkg = MakePkgGlobal(10, /*d=*/1);
  // With one choice the "least loaded of candidates" is the single hash.
  for (Key k = 0; k < 200; ++k) {
    WorkerId w1 = pkg->Route(0, k);
    WorkerId w2 = pkg->Route(0, k);
    EXPECT_EQ(w1, w2);
  }
}

TEST(PkgTest, NameReflectsEstimatorAndD) {
  EXPECT_EQ(MakePkgGlobal(4, 2)->Name(), "PKG-G");
  EXPECT_EQ(MakePkgGlobal(4, 3)->Name(), "PKG-G(d=3)");
  PartialKeyGrouping local(2, 4, std::make_unique<LocalLoadEstimator>(2, 4));
  EXPECT_EQ(local.Name(), "PKG-L");
}

TEST(PkgTest, BeatsHashingOnZipf) {
  // Theorem 4.1 requires p1 = O(1/n): with W = 5 and zipf exponent 1.0 over
  // 10k keys, p1 ~ 0.10 << 2/W = 0.4, inside PKG's balanceable regime —
  // while hashing pins the hot key to one worker and diverges.
  using workload::StaticDistribution;
  using workload::ZipfWeights;
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(10000, 1.0),
                                                   "zipf");
  Rng rng(1);
  auto pkg = MakePkgGlobal(5, 2);
  auto hash = MakePkgGlobal(5, 1);  // d=1 == hashing
  std::vector<uint64_t> pkg_loads(5, 0);
  std::vector<uint64_t> hash_loads(5, 0);
  for (int i = 0; i < 200000; ++i) {
    Key k = dist->Sample(&rng);
    ++pkg_loads[pkg->Route(0, k)];
    ++hash_loads[hash->Route(0, k)];
  }
  // The paper's headline: orders of magnitude better balance.
  EXPECT_LT(stats::ImbalanceOf(pkg_loads) * 50,
            stats::ImbalanceOf(hash_loads));
}

TEST(GlobalLoadEstimatorTest, SharedAcrossSources) {
  GlobalLoadEstimator est(3, 4);
  est.OnSend(0, 2);
  est.OnSend(1, 2);
  EXPECT_EQ(est.Estimate(2, 2), 2u);  // any source sees the global count
  EXPECT_EQ(est.GlobalLoads()[2], 2u);
  EXPECT_EQ(est.Name(), "G");
}

TEST(LocalLoadEstimatorTest, SourcesSeeOnlyTheirOwnLoad) {
  LocalLoadEstimator est(2, 4);
  est.OnSend(0, 1);
  est.OnSend(0, 1);
  est.OnSend(1, 1);
  EXPECT_EQ(est.Estimate(0, 1), 2u);
  EXPECT_EQ(est.Estimate(1, 1), 1u);
  EXPECT_EQ(est.GlobalLoads()[1], 3u);  // truth for metrics
  EXPECT_EQ(est.Name(), "L");
}

TEST(LocalLoadEstimatorTest, LocalLoadsVectorAccess) {
  LocalLoadEstimator est(2, 3);
  est.OnSend(1, 0);
  EXPECT_EQ(est.LocalLoads(1)[0], 1u);
  EXPECT_EQ(est.LocalLoads(0)[0], 0u);
}

TEST(ProbingLoadEstimatorTest, ProbeSyncsToGlobalShare) {
  ProbingLoadEstimator est(2, 2, /*probe_period=*/4);
  // Source 0 sends 4 messages to worker 0; source 1 has stale (zero) view.
  for (int i = 0; i < 4; ++i) {
    est.BeginRoute(0);
    est.OnSend(0, 0);
  }
  EXPECT_EQ(est.Estimate(1, 0), 0u);  // not yet probed
  est.BeginRoute(1);                  // 4 messages elapsed: probe fires
  // Synced to the source's 1/S share of the true global load (4 / 2): see
  // ProbingLoadEstimator::BeginRoute for why raw global would oscillate.
  EXPECT_EQ(est.Estimate(1, 0), 2u);
  EXPECT_GE(est.probes_performed(), 1u);
}

TEST(ProbingLoadEstimatorTest, NoProbeBeforePeriod) {
  ProbingLoadEstimator est(2, 2, /*probe_period=*/100);
  est.BeginRoute(0);
  est.OnSend(0, 0);
  est.BeginRoute(1);
  EXPECT_EQ(est.Estimate(1, 0), 0u);
  EXPECT_EQ(est.probes_performed(), 0u);
}

TEST(ProbingLoadEstimatorTest, NameIncludesPeriod) {
  ProbingLoadEstimator est(1, 1, 500);
  EXPECT_EQ(est.Name(), "LP(period=500)");
}

TEST(PkgLocalTest, PerSourceBalanceImpliesGlobalBalance) {
  // Section III-B's argument: if every source balances its own portion, the
  // global load is balanced. 4 sources, local estimation, uniform keys with
  // K >> n (so the candidate sets cover all bins, per Section IV).
  const uint32_t workers = 8;
  const uint32_t sources = 4;
  PartialKeyGrouping pkg(sources, workers,
                         std::make_unique<LocalLoadEstimator>(sources,
                                                              workers));
  std::vector<uint64_t> loads(workers, 0);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    SourceId s = static_cast<SourceId>(i % sources);
    Key k = rng.UniformInt(500);  // K = 500 >> n = 8
    ++loads[pkg.Route(s, k)];
  }
  // Max imbalance <= sum of local imbalances, which stay tiny.
  EXPECT_LT(stats::ImbalanceOf(loads),
            0.02 * 100000.0 / workers);
}

TEST(PkgLocalTest, LocalCloseToGlobalImbalance) {
  using workload::StaticDistribution;
  using workload::ZipfWeights;
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(5000, 1.2),
                                                   "zipf");
  const uint32_t workers = 10;
  const uint32_t sources = 5;
  PartialKeyGrouping global(1, workers,
                            std::make_unique<GlobalLoadEstimator>(1, workers));
  PartialKeyGrouping local(sources, workers,
                           std::make_unique<LocalLoadEstimator>(sources,
                                                                workers));
  std::vector<uint64_t> gl(workers, 0);
  std::vector<uint64_t> ll(workers, 0);
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    Key k = dist->Sample(&rng);
    ++gl[global.Route(0, k)];
    ++ll[local.Route(static_cast<SourceId>(i % sources), k)];
  }
  double gi = stats::ImbalanceOf(gl);
  double li = stats::ImbalanceOf(ll);
  // The paper: "the difference from the global variant is always less than
  // one order of magnitude". Allow exactly that.
  EXPECT_LT(li, std::max(10.0 * gi, 200.0));
}

TEST(PkgTest, MoreChoicesOnlyConstantFactor) {
  // d=2 vs d=4: both should be well balanced; d=4 no more than modestly
  // better (Azar et al.: exponential gain from 1->2, constant 2->d).
  // W = 8 and zipf 1.0 keep p1 ~ 0.1 < 2/W = 0.25 (balanceable regime).
  using workload::StaticDistribution;
  using workload::ZipfWeights;
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(10000, 1.0),
                                                   "zipf");
  Rng rng(5);
  auto d2 = MakePkgGlobal(8, 2);
  auto d4 = MakePkgGlobal(8, 4);
  std::vector<uint64_t> l2(8, 0);
  std::vector<uint64_t> l4(8, 0);
  for (int i = 0; i < 200000; ++i) {
    Key k = dist->Sample(&rng);
    ++l2[d2->Route(0, k)];
    ++l4[d4->Route(0, k)];
  }
  double i2 = stats::ImbalanceOf(l2);
  double i4 = stats::ImbalanceOf(l4);
  EXPECT_LT(i4, i2 + 1.0);           // more choices never much worse
  EXPECT_LT(i2, 200.0);              // and two choices already tiny
}

TEST(PkgTest, RequiresEstimator) {
  EXPECT_DEATH(
      PartialKeyGrouping(1, 4, nullptr),
      "LoadEstimator");
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
