// Copyright 2026 The pkgstream Authors.
// Property-based (parameterized) tests: invariants every partitioning
// technique must satisfy, swept across techniques x workers x skew levels.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "partition/factory.h"
#include "stats/frequency.h"
#include "stats/imbalance.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace partition {
namespace {

struct PropertyCase {
  Technique technique;
  uint32_t workers;
  uint32_t sources;
  double zipf_exponent;
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string name = TechniqueName(c.technique);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_w" + std::to_string(c.workers);
  name += "_s" + std::to_string(c.sources);
  name += "_z" + std::to_string(static_cast<int>(c.zipf_exponent * 10));
  return name;
}

class PartitionerPropertyTest : public testing::TestWithParam<PropertyCase> {
 protected:
  static constexpr uint64_t kMessages = 30000;
  static constexpr uint64_t kKeys = 2000;

  /// Builds the partitioner under test; fills frequencies for Off-Greedy.
  PartitionerPtr MakeSubject() {
    const PropertyCase& c = GetParam();
    PartitionerConfig config;
    config.technique = c.technique;
    config.sources = c.sources;
    config.workers = c.workers;
    config.seed = 42;
    config.probe_period_messages = 500;
    if (c.technique == Technique::kOffGreedy) {
      frequencies_ = ComputeStreamFrequencies();
      config.frequencies = &frequencies_;
    }
    auto result = MakePartitioner(config);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).ValueOrDie();
  }

  stats::FrequencyTable ComputeStreamFrequencies() {
    auto dist = Distribution();
    Rng rng(7);
    stats::FrequencyTable freq;
    for (uint64_t i = 0; i < kMessages; ++i) freq.Add(dist->Sample(&rng));
    return freq;
  }

  std::shared_ptr<const workload::StaticDistribution> Distribution() {
    return std::make_shared<workload::StaticDistribution>(
        workload::ZipfWeights(kKeys, GetParam().zipf_exponent), "zipf");
  }

  stats::FrequencyTable frequencies_;
};

TEST_P(PartitionerPropertyTest, RoutesAlwaysInRange) {
  auto p = MakeSubject();
  auto dist = Distribution();
  Rng rng(7);
  for (uint64_t i = 0; i < kMessages; ++i) {
    SourceId s = static_cast<SourceId>(i % GetParam().sources);
    WorkerId w = p->Route(s, dist->Sample(&rng));
    ASSERT_LT(w, GetParam().workers);
  }
}

TEST_P(PartitionerPropertyTest, FullyDeterministicReplay) {
  auto p1 = MakeSubject();
  auto p2 = MakeSubject();
  auto dist = Distribution();
  Rng rng1(7);
  Rng rng2(7);
  for (uint64_t i = 0; i < kMessages; ++i) {
    SourceId s = static_cast<SourceId>(i % GetParam().sources);
    ASSERT_EQ(p1->Route(s, dist->Sample(&rng1)),
              p2->Route(s, dist->Sample(&rng2)))
        << "diverged at message " << i;
  }
}

TEST_P(PartitionerPropertyTest, KeySpreadBoundedByMaxWorkersPerKey) {
  auto p = MakeSubject();
  auto dist = Distribution();
  Rng rng(7);
  std::map<Key, std::set<WorkerId>> spread;
  for (uint64_t i = 0; i < kMessages; ++i) {
    SourceId s = static_cast<SourceId>(i % GetParam().sources);
    Key k = dist->Sample(&rng);
    spread[k].insert(p->Route(s, k));
  }
  uint32_t bound = p->MaxWorkersPerKey();
  for (const auto& [key, workers] : spread) {
    ASSERT_LE(workers.size(), bound) << "key " << key;
  }
}

TEST_P(PartitionerPropertyTest, LoadsConserveMessages) {
  auto p = MakeSubject();
  auto dist = Distribution();
  Rng rng(7);
  std::vector<uint64_t> loads(GetParam().workers, 0);
  for (uint64_t i = 0; i < kMessages; ++i) {
    SourceId s = static_cast<SourceId>(i % GetParam().sources);
    ++loads[p->Route(s, dist->Sample(&rng))];
  }
  uint64_t total = 0;
  for (uint64_t l : loads) total += l;
  EXPECT_EQ(total, kMessages);
}

TEST_P(PartitionerPropertyTest, ReportedShapeMatchesConfig) {
  auto p = MakeSubject();
  EXPECT_EQ(p->workers(), GetParam().workers);
  EXPECT_EQ(p->sources(), GetParam().sources);
  EXPECT_FALSE(p->Name().empty());
  EXPECT_GE(p->MaxWorkersPerKey(), 1u);
  EXPECT_LE(p->MaxWorkersPerKey(), GetParam().workers);
}

std::vector<PropertyCase> AllCases() {
  // kRebalancing is excluded from this sweep: its MaxWorkersPerKey() of 1
  // describes *simultaneous* placement, while migration legitimately moves
  // a key across workers over the run (covered by its dedicated tests).
  std::vector<PropertyCase> cases;
  for (Technique t :
       {Technique::kHashing, Technique::kShuffle, Technique::kRandom,
        Technique::kPkgGlobal, Technique::kPkgLocal, Technique::kPkgProbing,
        Technique::kPotcStatic, Technique::kOnGreedy, Technique::kOffGreedy,
        Technique::kConsistent, Technique::kWChoices}) {
    for (uint32_t workers : {2u, 5u, 16u}) {
      for (double z : {0.0, 1.4}) {
        uint32_t sources = (t == Technique::kPkgLocal) ? 4u : 1u;
        cases.push_back(PropertyCase{t, workers, sources, z});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, PartitionerPropertyTest,
                         testing::ValuesIn(AllCases()), CaseName);

// --- Balance ordering properties, parameterized on skew ------------------

class BalanceOrderingTest : public testing::TestWithParam<double> {};

TEST_P(BalanceOrderingTest, PkgNeverWorseThanHashing) {
  double exponent = GetParam();
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(5000, exponent), "zipf");
  for (uint32_t workers : {5u, 10u}) {
    PartitionerConfig pkg_config;
    pkg_config.technique = Technique::kPkgGlobal;
    pkg_config.workers = workers;
    PartitionerConfig hash_config = pkg_config;
    hash_config.technique = Technique::kHashing;
    auto pkg = MakePartitioner(pkg_config);
    auto hash = MakePartitioner(hash_config);
    ASSERT_TRUE(pkg.ok() && hash.ok());
    std::vector<uint64_t> lp(workers, 0);
    std::vector<uint64_t> lh(workers, 0);
    Rng rng(11);
    for (int i = 0; i < 100000; ++i) {
      Key k = dist->Sample(&rng);
      ++lp[(*pkg)->Route(0, k)];
      ++lh[(*hash)->Route(0, k)];
    }
    EXPECT_LE(stats::ImbalanceOf(lp), stats::ImbalanceOf(lh) + 1.0)
        << "W=" << workers << " z=" << exponent;
  }
}

TEST_P(BalanceOrderingTest, ShuffleIsNearPerfect) {
  double exponent = GetParam();
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(5000, exponent), "zipf");
  PartitionerConfig config;
  config.technique = Technique::kShuffle;
  config.workers = 10;
  auto sg = MakePartitioner(config);
  ASSERT_TRUE(sg.ok());
  std::vector<uint64_t> loads(10, 0);
  Rng rng(13);
  for (int i = 0; i < 100000; ++i) ++loads[(*sg)->Route(0, dist->Sample(&rng))];
  EXPECT_LE(stats::ImbalanceOf(loads), 1.0);
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, BalanceOrderingTest,
                         testing::Values(0.5, 1.0, 1.5, 2.0),
                         [](const testing::TestParamInfo<double>& info) {
                           return "z" + std::to_string(static_cast<int>(
                                            info.param * 10));
                         });

}  // namespace
}  // namespace partition
}  // namespace pkgstream
