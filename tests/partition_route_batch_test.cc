// Copyright 2026 The pkgstream Authors.
// The RouteBatch bit-equivalence contract (partitioner.h): for every
// technique, RouteBatch(source, keys, out, n) must yield exactly the
// workers n scalar Route calls would, and leave the partitioner in the
// identical state — batch and scalar consumption are interchangeable
// mid-stream. The suite sweeps every factory technique x d in {2, 4} x 3
// seeds, drives one instance scalar and a twin through interleaved batch
// sizes (1, 7, 64 and a ragged tail) with a rotating source, and then
// checks post-batch state agreement both directly (more scalar routing on
// the originals) and through Clone() (more routing on the clones).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "common/hash.h"
#include "partition/factory.h"
#include "stats/frequency.h"

namespace pkgstream {
namespace partition {
namespace {

constexpr uint32_t kSources = 3;
constexpr uint32_t kWorkers = 8;
constexpr size_t kMessages = 4096;
constexpr size_t kStateProbeMessages = 512;

/// Deterministic skewed key sequence (decorrelated from the hash family).
Key TestKey(uint64_t seed, size_t i) {
  const uint64_t r = Fmix64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  // Square the uniform variate: a cheap head-heavy skew so techniques
  // with per-key state (PoTC tables, sketches) see repeats.
  const uint64_t u = r % 1024;
  return (u * u) / 1024;
}

struct SweepCase {
  Technique technique;
  uint32_t num_choices;
  uint64_t seed;
  uint32_t workers = kWorkers;
};

std::vector<SweepCase> AllCases() {
  const Technique techniques[] = {
      Technique::kHashing,    Technique::kShuffle,
      Technique::kRandom,     Technique::kPkgGlobal,
      Technique::kPkgLocal,   Technique::kPkgProbing,
      Technique::kPotcStatic, Technique::kOnGreedy,
      Technique::kOffGreedy,  Technique::kRebalancing,
      Technique::kConsistent, Technique::kWChoices,
      Technique::kDChoices,
  };
  std::vector<SweepCase> cases;
  for (Technique t : techniques) {
    for (uint32_t d : {2u, 4u}) {
      for (uint64_t seed : {1ull, 7ull, 42ull}) {
        cases.push_back(SweepCase{t, d, seed});
      }
    }
  }
  return cases;
}

/// Wide-worker sweep: with >= 256 buckets the PKG d=2 fused loop takes the
/// conflict-checked SIMD argmin (pkg.cc) on capable hosts, and the skewed
/// key stream plants plenty of intra-group candidate collisions — so both
/// the vector-committed groups and the scalar conflict fallback are pinned
/// against the sequential protocol here. The other techniques ride along
/// to cover wide-bucket BucketBatch dispatch generally.
std::vector<SweepCase> WideWorkerCases() {
  const Technique techniques[] = {
      Technique::kHashing,    Technique::kPkgGlobal, Technique::kPkgLocal,
      Technique::kPkgProbing, Technique::kPotcStatic,
      Technique::kWChoices,   Technique::kDChoices,
  };
  std::vector<SweepCase> cases;
  for (Technique t : techniques) {
    for (uint32_t workers : {256u, 1024u}) {
      for (uint64_t seed : {7ull, 42ull}) {
        cases.push_back(SweepCase{t, 2u, seed, workers});
      }
    }
  }
  return cases;
}

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  std::string name = TechniqueName(info.param.technique);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  name += "_d" + std::to_string(info.param.num_choices) + "_seed" +
          std::to_string(info.param.seed);
  if (info.param.workers != kWorkers) {
    name += "_w" + std::to_string(info.param.workers);
  }
  return name;
}

class RouteBatchEquivalenceTest : public testing::TestWithParam<SweepCase> {
 protected:
  PartitionerConfig Config() const {
    PartitionerConfig config;
    config.technique = GetParam().technique;
    config.sources = kSources;
    config.workers = GetParam().workers;
    config.seed = GetParam().seed;
    config.num_choices = GetParam().num_choices;
    config.probe_period_messages = 300;  // several probes inside the run
    config.rebalance_period = 500;
    config.frequencies = &frequencies_;
    return config;
  }

  void SetUp() override {
    for (size_t i = 0; i < kMessages; ++i) {
      frequencies_.Add(TestKey(GetParam().seed, i));
    }
  }

  stats::FrequencyTable frequencies_;
};

TEST_P(RouteBatchEquivalenceTest, InterleavedBatchesMatchScalarAndCloneAgrees) {
  auto scalar = MakePartitioner(Config());
  auto batch = MakePartitioner(Config());
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  ASSERT_TRUE(batch.ok()) << batch.status();

  const uint64_t seed = GetParam().seed;
  const size_t chunk_sizes[] = {1, 7, 64, 29};  // 29: ragged, non-power-of-2
  std::vector<Key> key_buf;
  std::vector<WorkerId> batch_out;
  size_t pos = 0;
  size_t chunk = 0;
  SourceId source = 0;
  while (pos < kMessages) {
    const size_t len =
        std::min(chunk_sizes[chunk % 4], kMessages - pos);
    key_buf.resize(len);
    batch_out.assign(len, kInvalidWorker);
    for (size_t j = 0; j < len; ++j) key_buf[j] = TestKey(seed, pos + j);
    (*batch)->RouteBatch(source, key_buf.data(), batch_out.data(), len);
    for (size_t j = 0; j < len; ++j) {
      const WorkerId expected = (*scalar)->Route(source, key_buf[j]);
      ASSERT_EQ(batch_out[j], expected)
          << "diverged at message " << pos + j << " (chunk " << chunk
          << ", source " << source << ")";
    }
    pos += len;
    ++chunk;
    source = static_cast<SourceId>(chunk % kSources);
  }

  // State agreement, via Clone(): the clones continue scalar and must walk
  // in lockstep.
  auto scalar_clone = (*scalar)->Clone();
  auto batch_clone = (*batch)->Clone();
  for (size_t i = 0; i < kStateProbeMessages; ++i) {
    const Key key = TestKey(seed ^ 0xabcdef, i);
    const SourceId s = static_cast<SourceId>(i % kSources);
    ASSERT_EQ(batch_clone->Route(s, key), scalar_clone->Route(s, key))
        << "clone state diverged at probe message " << i;
  }

  // ... and directly on the originals (Clone() of RandomGrouping reseeds,
  // so the originals are the authoritative state probe there).
  for (size_t i = 0; i < kStateProbeMessages; ++i) {
    const Key key = TestKey(seed ^ 0x123457, i);
    const SourceId s = static_cast<SourceId>(i % kSources);
    ASSERT_EQ((*batch)->Route(s, key), (*scalar)->Route(s, key))
        << "post-batch state diverged at probe message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, RouteBatchEquivalenceTest,
                         testing::ValuesIn(AllCases()), CaseName);

INSTANTIATE_TEST_SUITE_P(WideWorkers, RouteBatchEquivalenceTest,
                         testing::ValuesIn(WideWorkerCases()), CaseName);

}  // namespace
}  // namespace partition
}  // namespace pkgstream
