// Copyright 2026 The pkgstream Authors.
// Tests for heavy-hitter-aware PKG (W-Choices / D-Choices): the extension
// that restores balance when the head probability exceeds the two-choice
// limit p1 ~ 2/n of Section IV.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "partition/factory.h"
#include "partition/heavy_hitter_pkg.h"
#include "partition/load_estimator.h"
#include "partition/pkg.h"
#include "stats/imbalance.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace partition {
namespace {

std::unique_ptr<HeavyHitterAwarePkg> MakeWChoices(
    uint32_t workers, HeavyHitterPkgOptions options = {}) {
  return std::make_unique<HeavyHitterAwarePkg>(
      1, workers, std::make_unique<GlobalLoadEstimator>(1, workers), options);
}

TEST(WChoicesTest, TailKeysKeepTwoChoiceSpread) {
  auto p = MakeWChoices(16);
  // Uniform keys: nothing is heavy (each key ~1/1000 << 1/16), so every key
  // must stay within its two hash candidates.
  Rng rng(3);
  std::map<Key, std::set<WorkerId>> spread;
  for (int i = 0; i < 100000; ++i) {
    Key k = rng.UniformInt(1000);
    spread[k].insert(p->Route(0, k));
  }
  EXPECT_EQ(p->heavy_routings(), 0u);
  for (const auto& [key, workers] : spread) {
    EXPECT_LE(workers.size(), 2u) << "tail key " << key << " spread too far";
  }
}

TEST(WChoicesTest, HeadKeyDetectedAndSpread) {
  auto p = MakeWChoices(16);
  Rng rng(5);
  // One key carries 50% of the stream: p1 >> 2/16.
  std::set<WorkerId> hot_spread;
  for (int i = 0; i < 50000; ++i) {
    Key k = rng.Bernoulli(0.5) ? 0 : 1 + rng.UniformInt(5000);
    WorkerId w = p->Route(0, k);
    if (k == 0) hot_spread.insert(w);
  }
  EXPECT_TRUE(p->IsHeavy(0, 0));
  EXPECT_GT(p->heavy_routings(), 10000u);
  // The hot key must have been spread over (nearly) all workers.
  EXPECT_GE(hot_spread.size(), 12u);
}

TEST(WChoicesTest, RestoresBalanceBeyondTwoChoiceLimit) {
  // zipf(1.4) over 10k keys: p1 ~ 0.32. With W = 16, 2/W = 0.125 << p1:
  // plain PKG provably cannot balance (imbalance grows ~(p1/2 - 1/n)m);
  // W-Choices should crush it.
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(10000, 1.4), "zipf");
  const uint32_t workers = 16;
  PkgOptions pkg_options;
  PartialKeyGrouping pkg(1, workers,
                         std::make_unique<GlobalLoadEstimator>(1, workers),
                         pkg_options);
  auto wchoices = MakeWChoices(workers);
  std::vector<uint64_t> pkg_loads(workers, 0);
  std::vector<uint64_t> w_loads(workers, 0);
  Rng rng(7);
  const int m = 200000;
  for (int i = 0; i < m; ++i) {
    Key k = dist->Sample(&rng);
    ++pkg_loads[pkg.Route(0, k)];
    ++w_loads[wchoices->Route(0, k)];
  }
  double pkg_imb = stats::ImbalanceOf(pkg_loads);
  double w_imb = stats::ImbalanceOf(w_loads);
  EXPECT_GT(pkg_imb, 0.05 * m / workers);  // PKG visibly imbalanced here
  EXPECT_LT(w_imb * 20, pkg_imb);          // W-Choices at least 20x better
}

TEST(WChoicesTest, DChoicesUsesBoundedCandidates) {
  HeavyHitterPkgOptions options;
  options.head_choices = 4;  // D-Choices with d_head = 4
  auto p = MakeWChoices(16, options);
  EXPECT_EQ(p->MaxWorkersPerKey(), 4u);
  Rng rng(9);
  std::set<WorkerId> hot_spread;
  for (int i = 0; i < 50000; ++i) {
    Key k = rng.Bernoulli(0.5) ? 0 : 1 + rng.UniformInt(5000);
    WorkerId w = p->Route(0, k);
    if (k == 0) hot_spread.insert(w);
  }
  EXPECT_LE(hot_spread.size(), 4u + 2u);  // 4 head candidates + the 2 tail
                                          // candidates used before warm-up
}

TEST(WChoicesTest, WarmUpSuppressesEarlyDetection) {
  HeavyHitterPkgOptions options;
  options.min_messages = 10000;
  auto p = MakeWChoices(8, options);
  for (int i = 0; i < 5000; ++i) p->Route(0, /*key=*/0);
  EXPECT_EQ(p->heavy_routings(), 0u);  // still warming up
  EXPECT_FALSE(p->IsHeavy(0, 0));
  for (int i = 0; i < 10000; ++i) p->Route(0, /*key=*/0);
  EXPECT_TRUE(p->IsHeavy(0, 0));
}

TEST(WChoicesTest, PerSourceDetectionIsIndependent) {
  HeavyHitterPkgOptions options;
  options.min_messages = 100;
  HeavyHitterAwarePkg p(2, 8, std::make_unique<LocalLoadEstimator>(2, 8),
                        options);
  // Source 0 sees a hot key; source 1 sees uniform keys.
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    p.Route(0, rng.Bernoulli(0.6) ? 7 : 100 + rng.UniformInt(1000));
    p.Route(1, 100 + rng.UniformInt(1000));
  }
  EXPECT_TRUE(p.IsHeavy(0, 7));
  EXPECT_FALSE(p.IsHeavy(1, 7));
}

TEST(WChoicesTest, NameReflectsPolicy) {
  EXPECT_EQ(MakeWChoices(8)->Name(), "W-Choices-G");
  HeavyHitterPkgOptions options;
  options.head_choices = 4;
  EXPECT_EQ(MakeWChoices(8, options)->Name(), "D-Choices(4)-G");
}

TEST(WChoicesTest, FactoryIntegration) {
  PartitionerConfig config;
  config.technique = Technique::kWChoices;
  config.sources = 2;
  config.workers = 8;
  auto p = MakePartitioner(config);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->MaxWorkersPerKey(), 8u);
  EXPECT_EQ((*p)->Name(), "W-Choices-L");
  EXPECT_EQ(*ParseTechnique("W-Choices"), Technique::kWChoices);
  EXPECT_EQ(*ParseTechnique(TechniqueName(Technique::kWChoices)),
            Technique::kWChoices);

  config.sketch_capacity = 0;
  EXPECT_TRUE(MakePartitioner(config).status().IsInvalidArgument());
}

TEST(WChoicesTest, UniformStreamMatchesPkgBehaviour) {
  // With no heavy keys, W-Choices IS plain PKG (same hash family, same
  // estimator protocol) — decisions must match exactly.
  const uint32_t workers = 8;
  HeavyHitterPkgOptions options;
  auto wchoices = MakeWChoices(workers, options);
  PkgOptions pkg_options;
  pkg_options.num_choices = options.base_choices;
  pkg_options.hash_seed = options.hash_seed;
  PartialKeyGrouping pkg(1, workers,
                         std::make_unique<GlobalLoadEstimator>(1, workers),
                         pkg_options);
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.UniformInt(2000);
    ASSERT_EQ(wchoices->Route(0, k), pkg.Route(0, k)) << "at message " << i;
  }
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
