// Copyright 2026 The pkgstream Authors.
// Property tests for the Partitioner::SetWorkerSet contract across the
// reconfigurable techniques (PKG-L, D-Choices, W-Choices, SG, KG+rebalance),
// seeds x cluster sizes:
//
//  * healthy-path identity — a partitioner told "everyone is alive" (at any
//    point, including a crash+rejoin round trip with no degraded traffic)
//    routes byte-identically to one that never heard of reconfiguration;
//  * degraded safety — while workers are down, Route never returns a dead
//    worker, for any technique and any alive subset;
//  * post-rejoin consistency — after a rejoin restores the full worker set,
//    decisions fall back into the fresh-start partitioner's structure: PKG
//    routes inside the key's candidate set H1..Hd again, shuffle resumes a
//    full round-robin cycle, and clones keep routing identically to their
//    source (the replica contract extends to reconfigured state).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "partition/factory.h"
#include "partition/pkg.h"

namespace pkgstream {
namespace partition {
namespace {

/// Skewed key sequence (key space 100, quadratically skewed so a head key
/// dominates — the regime where PKG state actually matters).
std::vector<Key> MakeKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a = rng.UniformInt(100);
    const uint64_t b = rng.UniformInt(100);
    keys[i] = std::min(a, b);
  }
  return keys;
}

PartitionerConfig ConfigFor(Technique technique, uint32_t workers,
                            uint64_t seed) {
  PartitionerConfig config;
  config.technique = technique;
  config.workers = workers;
  config.seed = seed;
  if (technique == Technique::kDChoices || technique == Technique::kWChoices) {
    config.sketch_capacity = 2 * workers;
    config.heavy_min_messages = 100;
  }
  if (technique == Technique::kDChoices) config.heavy_threshold_factor = 0.5;
  return config;
}

const Technique kReconfigurable[] = {Technique::kPkgLocal,
                                     Technique::kDChoices,
                                     Technique::kWChoices, Technique::kShuffle,
                                     Technique::kRebalancing};

const uint32_t kClusterSizes[] = {4, 16, 50};

TEST(ReconfigEquivalenceTest, AllAliveSetWorkerSetIsByteInvisible) {
  // SetWorkerSet(all alive) — including a crash+rejoin round trip with no
  // messages routed in between — must not perturb a single decision.
  for (Technique technique : kReconfigurable) {
    for (uint32_t workers : kClusterSizes) {
      for (uint64_t seed : {1, 2, 3}) {
        auto base = MakePartitioner(ConfigFor(technique, workers, seed));
        auto poked = MakePartitioner(ConfigFor(technique, workers, seed));
        ASSERT_TRUE(base.ok() && poked.ok());
        ASSERT_TRUE((*poked)->SupportsReconfiguration());
        const std::vector<Key> keys = MakeKeys(2000, seed * 77);
        std::vector<bool> alive(workers, true);
        std::vector<bool> degraded(alive);
        degraded[workers / 2] = false;
        for (size_t i = 0; i < keys.size(); ++i) {
          if (i == 500) {
            ASSERT_TRUE((*poked)->SetWorkerSet(alive).ok());
          }
          if (i == 1000) {
            // Round trip with zero degraded traffic between the calls.
            ASSERT_TRUE((*poked)->SetWorkerSet(degraded).ok());
            ASSERT_TRUE((*poked)->SetWorkerSet(alive).ok());
          }
          EXPECT_EQ((*base)->Route(0, keys[i]), (*poked)->Route(0, keys[i]))
              << TechniqueName(technique) << " W=" << workers << " seed="
              << seed << " i=" << i;
        }
      }
    }
  }
}

TEST(ReconfigEquivalenceTest, DegradedRoutingNeverHitsDeadWorkers) {
  for (Technique technique : kReconfigurable) {
    for (uint32_t workers : kClusterSizes) {
      for (uint64_t seed : {1, 2, 3}) {
        auto p = MakePartitioner(ConfigFor(technique, workers, seed));
        ASSERT_TRUE(p.ok());
        const std::vector<Key> keys = MakeKeys(3000, seed * 31);
        // Warm up healthy, then kill every other worker.
        for (size_t i = 0; i < 1000; ++i) (*p)->Route(0, keys[i]);
        std::vector<bool> alive(workers);
        for (uint32_t w = 0; w < workers; ++w) alive[w] = (w % 2 == 0);
        ASSERT_TRUE((*p)->SetWorkerSet(alive).ok());
        for (size_t i = 1000; i < keys.size(); ++i) {
          const WorkerId w = (*p)->Route(0, keys[i]);
          ASSERT_LT(w, workers);
          EXPECT_TRUE(alive[w])
              << TechniqueName(technique) << " routed key " << keys[i]
              << " to dead worker " << w;
        }
      }
    }
  }
}

TEST(ReconfigEquivalenceTest, PkgRejoinReturnsToFreshCandidateSets) {
  // After the outage ends, PKG's decisions must land back inside the
  // candidate set H1..Hd a fresh partitioner would use — the structural
  // sense in which routing "converges back" (load estimates differ, so the
  // argmin need not match message for message; membership must).
  for (uint32_t workers : kClusterSizes) {
    for (uint64_t seed : {1, 2, 3, 4, 5}) {
      auto degraded_run =
          MakePartitioner(ConfigFor(Technique::kPkgLocal, workers, seed));
      auto fresh =
          MakePartitioner(ConfigFor(Technique::kPkgLocal, workers, seed));
      ASSERT_TRUE(degraded_run.ok() && fresh.ok());
      auto* fresh_pkg = dynamic_cast<PartialKeyGrouping*>(fresh->get());
      ASSERT_NE(fresh_pkg, nullptr);
      const std::vector<Key> keys = MakeKeys(3000, seed * 13);
      for (size_t i = 0; i < 1000; ++i) (*degraded_run)->Route(0, keys[i]);
      std::vector<bool> alive(workers, true);
      alive[0] = alive[1] = false;
      ASSERT_TRUE((*degraded_run)->SetWorkerSet(alive).ok());
      for (size_t i = 1000; i < 2000; ++i) (*degraded_run)->Route(0, keys[i]);
      // Rejoin: full worker set restored.
      ASSERT_TRUE(
          (*degraded_run)->SetWorkerSet(std::vector<bool>(workers, true)).ok());
      std::vector<WorkerId> candidates;
      for (size_t i = 2000; i < keys.size(); ++i) {
        const WorkerId w = (*degraded_run)->Route(0, keys[i]);
        fresh_pkg->CandidateWorkers(keys[i], &candidates);
        EXPECT_NE(std::find(candidates.begin(), candidates.end(), w),
                  candidates.end())
            << "W=" << workers << " seed=" << seed << ": post-rejoin route "
            << w << " outside the fresh candidate set of key " << keys[i];
      }
    }
  }
}

TEST(ReconfigEquivalenceTest, ShuffleResumesFullCyclesAfterRejoin) {
  for (uint32_t workers : kClusterSizes) {
    auto p = MakePartitioner(ConfigFor(Technique::kShuffle, workers, 42));
    ASSERT_TRUE(p.ok());
    for (uint32_t i = 0; i < 3 * workers + 1; ++i) (*p)->Route(0, i);
    std::vector<bool> alive(workers, true);
    alive[workers - 1] = false;
    ASSERT_TRUE((*p)->SetWorkerSet(alive).ok());
    for (uint32_t i = 0; i < workers; ++i) {
      EXPECT_NE((*p)->Route(0, i), workers - 1);
    }
    ASSERT_TRUE((*p)->SetWorkerSet(std::vector<bool>(workers, true)).ok());
    // One full cycle hits every worker exactly once again.
    std::set<WorkerId> seen;
    for (uint32_t i = 0; i < workers; ++i) seen.insert((*p)->Route(0, i));
    EXPECT_EQ(seen.size(), workers);
  }
}

TEST(ReconfigEquivalenceTest, ClonesInheritReconfiguredState) {
  // Clone() after SetWorkerSet must carry the alive mask: a replica built
  // mid-outage routes exactly like its source from that point on.
  for (Technique technique : kReconfigurable) {
    for (uint64_t seed : {9, 10}) {
      const uint32_t workers = 16;
      auto p = MakePartitioner(ConfigFor(technique, workers, seed));
      ASSERT_TRUE(p.ok());
      const std::vector<Key> keys = MakeKeys(2000, seed);
      for (size_t i = 0; i < 500; ++i) (*p)->Route(0, keys[i]);
      std::vector<bool> alive(workers, true);
      alive[3] = alive[7] = false;
      ASSERT_TRUE((*p)->SetWorkerSet(alive).ok());
      PartitionerPtr clone = (*p)->Clone();
      for (size_t i = 500; i < keys.size(); ++i) {
        EXPECT_EQ((*p)->Route(0, keys[i]), clone->Route(0, keys[i]))
            << TechniqueName(technique) << " seed=" << seed << " i=" << i;
      }
    }
  }
}

TEST(ReconfigEquivalenceTest, NonReconfigurableTechniquesSaySo) {
  for (Technique technique :
       {Technique::kHashing, Technique::kPotcStatic, Technique::kConsistent}) {
    auto p = MakePartitioner(ConfigFor(technique, 8, 42));
    ASSERT_TRUE(p.ok()) << TechniqueName(technique);
    EXPECT_FALSE((*p)->SupportsReconfiguration());
    EXPECT_TRUE((*p)->SetWorkerSet(std::vector<bool>(8, true))
                    .IsUnimplemented());
  }
}

}  // namespace
}  // namespace partition
}  // namespace pkgstream
