// Copyright 2026 The pkgstream Authors.
// Tests for the reproduction gate (tools/bench_check_lib): invariant
// evaluation semantics, metric-agreement diffing, document validation — and
// an audit of the committed golden baselines in bench/baselines/, so that
// deleting a declared invariant or corrupting a baseline file fails the
// suite even before `ctest -L repro` runs a bench.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "bench/report.h"
#include "common/json.h"
#include "tools/bench_check_lib.h"

namespace pkgstream {
namespace {

/// Minimal report document with the given deterministic metrics.
JsonValue MakeReport(const std::map<std::string, double>& metrics,
                     const std::map<std::string, double>& host_metrics = {}) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Number(bench::kReportSchemaVersion));
  doc.Set("bench", JsonValue::Str("bench_fake"));
  doc.Set("scale", JsonValue::Str("quick"));
  doc.Set("seed", JsonValue::Number(42));
  JsonValue m = JsonValue::Object();
  for (const auto& [k, v] : metrics) m.Set(k, JsonValue::Number(v));
  doc.Set("metrics", std::move(m));
  JsonValue hm = JsonValue::Object();
  for (const auto& [k, v] : host_metrics) hm.Set(k, JsonValue::Number(v));
  doc.Set("host_metrics", std::move(hm));
  return doc;
}

/// Baseline whose captured section is `captured` and whose invariants are
/// given as JSON text (an array).
JsonValue MakeBaseline(const JsonValue& captured,
                       const std::string& invariants_json) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Number(bench::kReportSchemaVersion));
  doc.Set("bench", JsonValue::Str("bench_fake"));
  doc.Set("tolerance", JsonValue::Number(1e-6));
  auto inv = JsonValue::Parse(invariants_json);
  EXPECT_TRUE(inv.ok()) << inv.status();
  doc.Set("invariants", *inv);
  doc.Set("captured", captured);
  return doc;
}

TEST(BenchCheckTest, IdenticalReportWithHoldingInvariantPasses) {
  JsonValue report = MakeReport({{"a", 10.0}, {"b", 1.0}});
  JsonValue baseline = MakeBaseline(
      report, R"([{"name": "a >> b", "type": "ge", "left": "a",
                   "right": "b", "factor": 5}])");
  auto outcome = repro::CheckReport(report, baseline);
  EXPECT_TRUE(outcome.ok()) << outcome.failures[0];
  EXPECT_EQ(outcome.passed.size(), 2u);  // agreement + 1 invariant
}

TEST(BenchCheckTest, ViolatedOrderingInvariantFails) {
  JsonValue report = MakeReport({{"a", 10.0}, {"b", 1.0}});
  JsonValue baseline = MakeBaseline(
      report, R"([{"name": "b beats a", "type": "ge", "left": "b",
                   "right": "a"}])");
  auto outcome = repro::CheckReport(report, baseline);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.failures[0].find("VIOLATED"), std::string::npos);
}

TEST(BenchCheckTest, RatioToleranceSemantics) {
  JsonValue report = MakeReport({{"pkg", 1.0}, {"greedy", 0.95}});
  // PKG <= 1.1x Off-Greedy style claim: 1.0 <= 1.1 * 0.95 holds...
  JsonValue ok_baseline = MakeBaseline(
      report, R"([{"name": "pkg close", "type": "le", "left": "pkg",
                   "right": "greedy", "factor": 1.1}])");
  EXPECT_TRUE(repro::CheckReport(report, ok_baseline).ok());
  // ...but without the tolerance factor it fails.
  JsonValue tight = MakeBaseline(
      report, R"([{"name": "pkg strictly under", "type": "le",
                   "left": "pkg", "right": "greedy"}])");
  EXPECT_FALSE(repro::CheckReport(report, tight).ok());
}

TEST(BenchCheckTest, EqAndConstOperands) {
  JsonValue report = MakeReport({{"jaccard", 0.47}});
  JsonValue baseline = MakeBaseline(
      report,
      R"([{"name": "well below 1", "type": "le", "left": "jaccard",
           "right_const": 1.0, "factor": 0.9},
          {"name": "around the paper value", "type": "eq",
           "left": "jaccard", "right_const": 0.5, "rel_tol": 0.2}])");
  auto outcome = repro::CheckReport(report, baseline);
  EXPECT_TRUE(outcome.ok()) << outcome.failures[0];
  JsonValue off = MakeBaseline(
      report, R"([{"name": "exactly half", "type": "eq", "left": "jaccard",
                   "right_const": 0.5, "rel_tol": 0.01}])");
  EXPECT_FALSE(repro::CheckReport(report, off).ok());
}

TEST(BenchCheckTest, RatioOfRatiosViaDivOperands) {
  // "KG declines faster": (kg_start/kg_end) >= 1.2 * (pkg_start/pkg_end).
  JsonValue report = MakeReport({{"kg_start", 8000.0},
                                 {"kg_end", 3200.0},
                                 {"pkg_start", 9500.0},
                                 {"pkg_end", 6000.0}});
  JsonValue baseline = MakeBaseline(
      report,
      R"([{"name": "kg declines fastest", "type": "ge", "left": "kg_start",
           "left_div": "kg_end", "right": "pkg_start",
           "right_div": "pkg_end", "factor": 1.2}])");
  EXPECT_TRUE(repro::CheckReport(report, baseline).ok());
}

TEST(BenchCheckTest, MonotoneInvariants) {
  JsonValue report =
      MakeReport({{"w5", 1.0}, {"w10", 1.4}, {"w50", 90.0}});
  JsonValue up = MakeBaseline(
      report, R"([{"name": "degrades with W", "type":
                   "monotone_nondecreasing", "keys": ["w5", "w10", "w50"],
                   "slack": 1.05}])");
  EXPECT_TRUE(repro::CheckReport(report, up).ok());
  JsonValue down = MakeBaseline(
      report, R"([{"name": "improves with W", "type":
                   "monotone_nonincreasing", "keys": ["w5", "w10", "w50"]}])");
  EXPECT_FALSE(repro::CheckReport(report, down).ok());
  // Slack forgives a small wiggle.
  JsonValue wiggly =
      MakeReport({{"w5", 1.0}, {"w10", 0.97}, {"w50", 90.0}});
  JsonValue forgiving = MakeBaseline(
      wiggly, R"([{"name": "degrades with W", "type":
                   "monotone_nondecreasing", "keys": ["w5", "w10", "w50"],
                   "slack": 1.05}])");
  EXPECT_TRUE(repro::CheckReport(wiggly, forgiving).ok());
  // Slack must loosen (never tighten) for negative series too: a constant
  // negative sequence is trivially monotone in both directions.
  JsonValue negative = MakeReport({{"d1", -10.0}, {"d2", -10.0}});
  for (const char* type :
       {"monotone_nonincreasing", "monotone_nondecreasing"}) {
    JsonValue b = MakeBaseline(
        negative, std::string(R"([{"name": "constant", "type": ")") + type +
                      R"(", "keys": ["d1", "d2"], "slack": 1.05}])");
    EXPECT_TRUE(repro::CheckReport(negative, b).ok()) << type;
  }
}

TEST(BenchCheckTest, CrossBenchOperandsResolveFromSiblingBaselines) {
  // A "<bench>::<metric>" operand reads the *captured metrics* of the named
  // sibling baseline in the provided directory — never the fresh report.
  const std::string dir = testing::TempDir() + "cross_bench_ok";
  JsonValue sibling_captured = MakeReport({{"imbalance/kg", 600.0},
                                           {"imbalance/pkg", 3.0}});
  JsonValue sibling = MakeBaseline(
      sibling_captured, R"([{"name": "kg positive", "type": "ge",
                             "left": "imbalance/kg", "right_const": 0}])");
  sibling.Set("bench", JsonValue::Str("bench_sibling"));
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteJsonFile(sibling, dir + "/bench_sibling.json").ok());

  JsonValue report = MakeReport({{"gap", 150.0}});
  // 150 >= 0.5 * (600/3) = 100 holds; at factor 1 it fails.
  JsonValue holds = MakeBaseline(
      report, R"([{"name": "gap consistent", "type": "ge", "left": "gap",
                   "right": "bench_sibling::imbalance/kg",
                   "right_div": "bench_sibling::imbalance/pkg",
                   "factor": 0.5}])");
  auto outcome = repro::CheckReport(report, holds, dir);
  EXPECT_TRUE(outcome.ok()) << outcome.failures[0];
  JsonValue tight = MakeBaseline(
      report, R"([{"name": "gap too tight", "type": "ge", "left": "gap",
                   "right": "bench_sibling::imbalance/kg",
                   "right_div": "bench_sibling::imbalance/pkg"}])");
  EXPECT_FALSE(repro::CheckReport(report, tight, dir).ok());
}

TEST(BenchCheckTest, CrossBenchReadsCapturedMetricsNotHostMetrics) {
  const std::string dir = testing::TempDir() + "cross_bench_host";
  JsonValue sibling_captured =
      MakeReport({{"det", 2.0}}, {{"wall_clock", 777.0}});
  JsonValue sibling = MakeBaseline(
      sibling_captured, R"([{"name": "p", "type": "ge", "left": "det",
                             "right_const": 0}])");
  sibling.Set("bench", JsonValue::Str("bench_sibling"));
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteJsonFile(sibling, dir + "/bench_sibling.json").ok());

  JsonValue report = MakeReport({{"a", 1.0}});
  // Deterministic captured metric: resolvable.
  JsonValue det = MakeBaseline(
      report, R"([{"name": "det readable", "type": "ge",
                   "left": "bench_sibling::det", "right_const": 1}])");
  EXPECT_TRUE(repro::CheckReport(report, det, dir).ok());
  // Captured *host* metric: deliberately not resolvable (another host's
  // wall clock is not a reproducible operand).
  JsonValue host = MakeBaseline(
      report, R"([{"name": "wall clock off limits", "type": "ge",
                   "left": "bench_sibling::wall_clock", "right_const": 0}])");
  EXPECT_FALSE(repro::CheckReport(report, host, dir).ok());
}

TEST(BenchCheckTest, CrossBenchFailsClosedWithoutDirectoryOrSibling) {
  JsonValue report = MakeReport({{"a", 1.0}});
  JsonValue baseline = MakeBaseline(
      report, R"([{"name": "x", "type": "ge",
                   "left": "bench_missing::metric", "right_const": 0}])");
  // No directory: red, with a message naming the problem.
  auto no_dir = repro::CheckReport(report, baseline);
  ASSERT_FALSE(no_dir.ok());
  EXPECT_NE(no_dir.failures[0].find("no baseline directory"),
            std::string::npos);
  // Directory without the sibling file: red too.
  const std::string dir = testing::TempDir() + "cross_bench_empty";
  std::filesystem::create_directories(dir);
  auto no_file = repro::CheckReport(report, baseline, dir);
  ASSERT_FALSE(no_file.ok());
  EXPECT_NE(no_file.failures[0].find("bench_missing"), std::string::npos);
  // A sibling file whose document identifies as a *different* bench (a
  // misnamed or miscopied baseline): red, not another bench's numbers.
  JsonValue imposter = MakeBaseline(
      MakeReport({{"metric", 1.0}}), R"([{"name": "p", "type": "ge",
                                          "left": "metric",
                                          "right_const": 0}])");
  imposter.Set("bench", JsonValue::Str("bench_other"));
  ASSERT_TRUE(WriteJsonFile(imposter, dir + "/bench_missing.json").ok());
  auto misnamed = repro::CheckReport(report, baseline, dir);
  ASSERT_FALSE(misnamed.ok());
  EXPECT_NE(misnamed.failures[0].find("declares bench 'bench_other'"),
            std::string::npos);
}

TEST(BenchCheckTest, MissingSiblingInputsAreDistinguishableFromMetricDrift) {
  // A missing gate *input* (wrong --baseline-dir, never-committed sibling,
  // corrupt file) must read as a configuration problem, not as metric
  // drift — each case gets a distinct, self-diagnosing message.
  JsonValue report = MakeReport({{"a", 1.0}});
  JsonValue baseline = MakeBaseline(
      report, R"([{"name": "x", "type": "ge",
                   "left": "bench_missing::metric", "right_const": 0}])");

  // Directory itself absent: the message names the directory, not the file.
  const std::string ghost_dir = testing::TempDir() + "cross_bench_ghost_dir";
  std::filesystem::remove_all(ghost_dir);
  auto no_dir = repro::CheckReport(report, baseline, ghost_dir);
  ASSERT_FALSE(no_dir.ok());
  EXPECT_NE(no_dir.failures[0].find("missing gate input"), std::string::npos);
  EXPECT_NE(no_dir.failures[0].find(ghost_dir), std::string::npos);
  EXPECT_NE(no_dir.failures[0].find("itself is missing"), std::string::npos);

  // Directory present, sibling file absent: names the file, still flagged
  // as a gate input problem.
  const std::string dir = testing::TempDir() + "cross_bench_no_sibling";
  std::filesystem::remove_all(dir);  // TempDir persists across runs
  std::filesystem::create_directories(dir);
  auto no_file = repro::CheckReport(report, baseline, dir);
  ASSERT_FALSE(no_file.ok());
  EXPECT_NE(no_file.failures[0].find("does not exist"), std::string::npos);
  EXPECT_NE(no_file.failures[0].find("bench_missing.json"),
            std::string::npos);
  EXPECT_NE(no_file.failures[0].find("missing gate input"),
            std::string::npos);

  // File present but unparsable: "cannot parse", never "does not exist".
  {
    std::ofstream corrupt(dir + "/bench_missing.json");
    corrupt << "{ not json";
  }
  auto bad_parse = repro::CheckReport(report, baseline, dir);
  ASSERT_FALSE(bad_parse.ok());
  EXPECT_NE(bad_parse.failures[0].find("cannot parse"), std::string::npos);
  EXPECT_EQ(bad_parse.failures[0].find("does not exist"), std::string::npos);
}

TEST(BenchCheckTest, SkipHostInvariantsSkipsOnlyTimingClaims) {
  // Sanitizer runs pass skip_host_invariants: a wall-clock ratio that
  // would fail is skipped (and counted), while a violated deterministic
  // invariant and metric drift still go red.
  JsonValue captured = MakeReport({{"det", 5.0}}, {{"rate_a", 1.0}});
  JsonValue report = MakeReport({{"det", 5.0}}, {{"rate_a", 1.0}});
  JsonValue baseline = MakeBaseline(
      captured, R"([{"name": "timing ratio", "type": "ge", "left": "rate_a",
                     "right_const": 50},
                    {"name": "det positive", "type": "ge", "left": "det",
                     "right_const": 0}])");
  // Without the option the timing claim fails...
  EXPECT_FALSE(repro::CheckReport(report, baseline).ok());
  // ...with it, it is skipped and everything else holds.
  repro::CheckOptions skip;
  skip.skip_host_invariants = true;
  auto outcome = repro::CheckReport(report, baseline, "", skip);
  EXPECT_TRUE(outcome.ok()) << outcome.failures[0];
  EXPECT_EQ(outcome.skipped, 1u);

  // A violated *deterministic* invariant is still a failure under skip.
  JsonValue det_broken = MakeBaseline(
      captured, R"([{"name": "det huge", "type": "ge", "left": "det",
                     "right_const": 1000}])");
  auto det_outcome = repro::CheckReport(report, det_broken, "", skip);
  ASSERT_FALSE(det_outcome.ok());
  EXPECT_EQ(det_outcome.skipped, 0u);

  // Deterministic metric drift is still a failure under skip.
  JsonValue drifted = MakeReport({{"det", 6.0}}, {{"rate_a", 1.0}});
  EXPECT_FALSE(repro::CheckReport(drifted, baseline, "", skip).ok());
}

TEST(BenchCheckTest, HostMetricsResolvableInInvariantsButNotDiffed) {
  JsonValue captured = MakeReport({{"det", 1.0}}, {{"mps", 100.0}});
  JsonValue report = MakeReport({{"det", 1.0}}, {{"mps", 977.0}});
  // Wall-clock drift between capture and fresh run must not fail...
  JsonValue baseline = MakeBaseline(
      captured, R"([{"name": "made progress", "type": "ge", "left": "mps",
                     "right_const": 0, "factor": 1}])");
  auto outcome = repro::CheckReport(report, baseline);
  EXPECT_TRUE(outcome.ok()) << outcome.failures[0];
}

TEST(BenchCheckTest, MetricDriftAgainstCapturedFails) {
  JsonValue captured = MakeReport({{"a", 1.0}});
  JsonValue drifted = MakeReport({{"a", 1.001}});
  JsonValue baseline = MakeBaseline(
      captured, R"([{"name": "positive", "type": "ge", "left": "a",
                     "right_const": 0}])");
  auto outcome = repro::CheckReport(drifted, baseline);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.failures[0].find("drifted"), std::string::npos);
}

TEST(BenchCheckTest, MissingAndUnknownMetricsFail) {
  JsonValue captured = MakeReport({{"a", 1.0}, {"gone", 2.0}});
  JsonValue fresh = MakeReport({{"a", 1.0}, {"new", 3.0}});
  JsonValue baseline = MakeBaseline(
      captured, R"([{"name": "positive", "type": "ge", "left": "a",
                     "right_const": 0}])");
  auto outcome = repro::CheckReport(fresh, baseline);
  ASSERT_EQ(outcome.failures.size(), 2u);
  EXPECT_NE(outcome.failures[0].find("'gone' missing"), std::string::npos);
  EXPECT_NE(outcome.failures[1].find("'new'"), std::string::npos);
}

TEST(BenchCheckTest, EmptyInvariantsAreARedGate) {
  JsonValue report = MakeReport({{"a", 1.0}});
  JsonValue baseline = MakeBaseline(report, "[]");
  auto outcome = repro::CheckReport(report, baseline);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.failures[0].find("no invariants"), std::string::npos);
}

TEST(BenchCheckTest, UnknownInvariantTypeAndMissingKeyFail) {
  JsonValue report = MakeReport({{"a", 1.0}});
  JsonValue unknown = MakeBaseline(
      report, R"([{"name": "x", "type": "approximately"}])");
  EXPECT_FALSE(repro::CheckReport(report, unknown).ok());
  JsonValue missing = MakeBaseline(
      report, R"([{"name": "x", "type": "ge", "left": "nope",
                   "right": "a"}])");
  EXPECT_FALSE(repro::CheckReport(report, missing).ok());
}

TEST(BenchCheckTest, MismatchedDocumentsFail) {
  JsonValue report = MakeReport({{"a", 1.0}});
  JsonValue baseline = MakeBaseline(
      report, R"([{"name": "positive", "type": "ge", "left": "a",
                   "right_const": 0}])");

  JsonValue wrong_bench = report;
  wrong_bench.Set("bench", JsonValue::Str("bench_other"));
  EXPECT_FALSE(repro::CheckReport(wrong_bench, baseline).ok());

  JsonValue wrong_scale = report;
  wrong_scale.Set("scale", JsonValue::Str("full"));
  EXPECT_FALSE(repro::CheckReport(wrong_scale, baseline).ok());

  JsonValue wrong_seed = report;
  wrong_seed.Set("seed", JsonValue::Number(7));
  EXPECT_FALSE(repro::CheckReport(wrong_seed, baseline).ok());

  JsonValue wrong_schema = report;
  wrong_schema.Set("schema_version", JsonValue::Number(99));
  EXPECT_FALSE(repro::CheckReport(wrong_schema, baseline).ok());
}

// ---------------------------------------------------------------------------
// Audit of the committed baselines: every paper bench has one, every file is
// self-consistent (its captured report satisfies its own declared
// invariants), and the declared invariant counts match this manifest —
// deleting an invariant from a baseline file fails here.
// ---------------------------------------------------------------------------

struct BaselineSpec {
  const char* bench;
  size_t invariants;
};

constexpr BaselineSpec kBaselines[] = {
    {"bench_table1_datasets", 16},
    {"bench_table2_imbalance", 16},
    {"bench_fig2_local_vs_global", 18},
    {"bench_fig3_time_series", 6},
    {"bench_fig4_skewed_sources", 7},
    {"bench_fig5a_throughput", 12},
    {"bench_fig5b_memory", 11},
    {"bench_ablation_choices", 14},
    {"bench_ablation_probing", 7},
    {"bench_ablation_rebalance", 8},
    {"bench_threaded_scaling", 7},
    {"bench_seq_dchoices", 24},
    {"bench_micro_route", 14},
    {"bench_latency_under_load", 21},
    {"bench_threaded_manyworkers", 30},
    {"bench_reconfig", 44},
};

class BaselineAuditTest : public testing::TestWithParam<BaselineSpec> {};

TEST_P(BaselineAuditTest, CommittedBaselineIsSelfConsistent) {
  const BaselineSpec& spec = GetParam();
  const std::string path =
      std::string(PKGSTREAM_BASELINE_DIR) + "/" + spec.bench + ".json";
  auto baseline = ReadJsonFile(path);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  EXPECT_EQ(baseline->StringOr("bench", "?"), spec.bench);
  EXPECT_EQ(baseline->NumberOr("schema_version", -1),
            bench::kReportSchemaVersion);

  const JsonValue* invariants = baseline->Find("invariants");
  ASSERT_NE(invariants, nullptr);
  ASSERT_TRUE(invariants->is_array());
  EXPECT_EQ(invariants->size(), spec.invariants)
      << "declared invariants changed for " << spec.bench
      << "; review the paper-shape coverage and update this manifest";

  const JsonValue* captured = baseline->FindObject("captured");
  ASSERT_NE(captured, nullptr) << "baseline has no captured report";
  EXPECT_EQ(captured->StringOr("scale", "?"), "quick")
      << "baselines are captured at --quick (the scale the repro gate runs)";
  const JsonValue* metrics = captured->FindObject("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->members().size(), 0u);

  // The captured report must satisfy its own invariants: a baseline that
  // fails itself can only ever go red, which hides real regressions. The
  // committed baseline directory doubles as the cross-bench sibling root.
  auto outcome =
      repro::CheckReport(*captured, *baseline, PKGSTREAM_BASELINE_DIR);
  EXPECT_TRUE(outcome.ok())
      << spec.bench << " self-check: " << outcome.failures[0];
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineAuditTest, testing::ValuesIn(kBaselines),
    [](const testing::TestParamInfo<BaselineSpec>& info) {
      return std::string(info.param.bench);
    });

}  // namespace
}  // namespace pkgstream
