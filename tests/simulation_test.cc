// Copyright 2026 The pkgstream Authors.
// Tests for the routing-simulation harness and (small-scale) canned
// experiments, including paper-shape integration checks.

#include <gtest/gtest.h>

#include "simulation/experiments.h"
#include "simulation/runner.h"
#include "workload/dataset.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace simulation {
namespace {

Feed ZipfFeed(uint64_t keys, double z, uint64_t seed,
              std::shared_ptr<workload::IidKeyStream>* keep) {
  auto dist = std::make_shared<workload::StaticDistribution>(
      workload::ZipfWeights(keys, z), "zipf");
  *keep = std::make_shared<workload::IidKeyStream>(dist, seed);
  return MakeKeyFeed(keep->get());
}

TEST(RunnerTest, RejectsZeroMessages) {
  RoutingConfig config;
  config.messages = 0;
  std::shared_ptr<workload::IidKeyStream> keep;
  Feed feed = ZipfFeed(100, 1.0, 1, &keep);
  EXPECT_TRUE(RunRouting(config, feed).status().IsInvalidArgument());
}

TEST(RunnerTest, LoadsSumToMessages) {
  RoutingConfig config;
  config.partitioner.technique = partition::Technique::kPkgLocal;
  config.partitioner.sources = 3;
  config.partitioner.workers = 7;
  config.messages = 10000;
  std::shared_ptr<workload::IidKeyStream> keep;
  Feed feed = ZipfFeed(500, 1.0, 1, &keep);
  auto result = RunRouting(config, feed);
  ASSERT_TRUE(result.ok());
  uint64_t total = 0;
  for (uint64_t l : result->loads) total += l;
  EXPECT_EQ(total, 10000u);
  uint64_t sources_total = 0;
  for (uint64_t l : result->source_loads) sources_total += l;
  EXPECT_EQ(sources_total, 10000u);
  EXPECT_EQ(result->imbalance.messages, 10000u);
  EXPECT_EQ(result->technique, "PKG-L");
}

TEST(RunnerTest, ShuffleSplitIsUniformAcrossSources) {
  RoutingConfig config;
  config.partitioner.sources = 4;
  config.partitioner.workers = 2;
  config.messages = 8000;
  config.source_split = SourceSplit::kShuffle;
  std::shared_ptr<workload::IidKeyStream> keep;
  Feed feed = ZipfFeed(100, 1.0, 3, &keep);
  auto result = RunRouting(config, feed);
  ASSERT_TRUE(result.ok());
  for (uint64_t l : result->source_loads) EXPECT_EQ(l, 2000u);
}

TEST(RunnerTest, KeyedSplitFollowsSourceKey) {
  // With kKeyed, messages with the same source_key go to the same source.
  // Our key feed uses the running index as source key, so instead use the
  // edge feed where source_key is the graph src vertex.
  workload::RmatOptions opt;
  opt.scale = 10;
  workload::RmatEdgeStream edges(opt, 42);
  Feed feed = MakeEdgeFeed(&edges);
  RoutingConfig config;
  config.partitioner.sources = 5;
  config.partitioner.workers = 4;
  config.messages = 20000;
  config.source_split = SourceSplit::kKeyed;
  auto result = RunRouting(config, feed);
  ASSERT_TRUE(result.ok());
  // Skewed split: the busiest source should clearly exceed m/S.
  uint64_t max_load = 0;
  for (uint64_t l : result->source_loads) max_load = std::max(max_load, l);
  EXPECT_GT(max_load, 20000u / 5 + 500);
}

TEST(RunnerTest, ComputeFrequenciesMatchesStream) {
  std::shared_ptr<workload::IidKeyStream> keep;
  Feed feed = ZipfFeed(50, 1.2, 9, &keep);
  stats::FrequencyTable freq = ComputeFrequencies(feed, 5000);
  EXPECT_EQ(freq.total(), 5000u);
  EXPECT_LE(freq.distinct(), 50u);
}

TEST(RunnerTest, AgreementIdenticalConfigsFullOverlap) {
  RoutingConfig config;
  config.partitioner.technique = partition::Technique::kPkgGlobal;
  config.partitioner.workers = 8;
  config.messages = 5000;
  std::shared_ptr<workload::IidKeyStream> keep;
  Feed feed = ZipfFeed(300, 1.1, 5, &keep);
  auto result = RunAgreement(config, config, feed);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->jaccard, 1.0);
  EXPECT_DOUBLE_EQ(result->match_rate, 1.0);
}

TEST(RunnerTest, AgreementGlobalVsLocalPartialOverlap) {
  // The paper's Q2 observation: G and L disagree on destinations (≈47%
  // Jaccard) while achieving similar imbalance.
  RoutingConfig global;
  global.partitioner.technique = partition::Technique::kPkgGlobal;
  global.partitioner.workers = 10;
  global.messages = 100000;
  RoutingConfig local = global;
  local.partitioner.technique = partition::Technique::kPkgLocal;
  local.partitioner.sources = 5;
  std::shared_ptr<workload::IidKeyStream> keep;
  Feed feed = ZipfFeed(3000, 1.0, 5, &keep);
  auto result = RunAgreement(global, local, feed);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->jaccard, 0.9);   // far from identical choices
  EXPECT_GT(result->jaccard, 0.2);   // but far from disjoint
  // ... while imbalance stays comparable (within 10x).
  EXPECT_LT(result->b.imbalance.avg_imbalance,
            10 * result->a.imbalance.avg_imbalance + 100);
}

TEST(RunnerTest, AgreementRequiresMatchingShape) {
  RoutingConfig a;
  a.partitioner.workers = 4;
  RoutingConfig b;
  b.partitioner.workers = 8;
  std::shared_ptr<workload::IidKeyStream> keep;
  Feed feed = ZipfFeed(100, 1.0, 5, &keep);
  EXPECT_FALSE(RunAgreement(a, b, feed).ok());
  b.partitioner.workers = 4;
  b.messages = a.messages + 1;
  EXPECT_FALSE(RunAgreement(a, b, feed).ok());
}

// ----------------------- Paper-shape integration --------------------------

TEST(PaperShapeTest, Table2OrderingAtSmallScale) {
  // PKG <= On-Greedy <= PoTC <= Hashing on a WP-like stream (W inside the
  // balanceable regime).
  const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
  const double scale = 0.002;  // 44k messages: fast
  const uint64_t messages = workload::ScaledMessages(wp, scale);
  auto run = [&](partition::Technique technique,
                 const stats::FrequencyTable* freq) {
    auto stream = workload::MakeKeyStream(wp, scale, 42);
    EXPECT_TRUE(stream.ok());
    Feed feed = MakeKeyFeed(stream->get());
    RoutingConfig config;
    config.partitioner.technique = technique;
    config.partitioner.workers = 5;
    config.partitioner.frequencies = freq;
    config.messages = messages;
    auto result = RunRouting(config, feed);
    EXPECT_TRUE(result.ok());
    return result->imbalance.avg_imbalance;
  };
  auto freq_stream = workload::MakeKeyStream(wp, scale, 42);
  ASSERT_TRUE(freq_stream.ok());
  Feed freq_feed = MakeKeyFeed(freq_stream->get());
  stats::FrequencyTable freq = ComputeFrequencies(freq_feed, messages);

  double pkg = run(partition::Technique::kPkgLocal, nullptr);
  double potc = run(partition::Technique::kPotcStatic, nullptr);
  double hashing = run(partition::Technique::kHashing, nullptr);
  double off = run(partition::Technique::kOffGreedy, &freq);
  EXPECT_LT(pkg, hashing / 100) << "PKG should crush hashing";
  EXPECT_LT(potc, hashing) << "PoTC beats hashing";
  EXPECT_LT(pkg, off + 1.0) << "PKG comparable to clairvoyant Off-Greedy";
}

TEST(PaperShapeTest, Fig2LocalWithinOrderOfMagnitudeOfGlobal) {
  // WP-like stream: p1 = 9.3% < 2/W = 0.2, the regime where Figure 2 shows
  // G and L both far below H.
  const auto& wp = workload::GetDataset(workload::DatasetId::kWP);
  const double scale = 0.005;
  const uint64_t messages = workload::ScaledMessages(wp, scale);
  auto run = [&](partition::Technique technique, uint32_t sources) {
    auto stream = workload::MakeKeyStream(wp, scale, 42);
    EXPECT_TRUE(stream.ok());
    Feed feed = MakeKeyFeed(stream->get());
    RoutingConfig config;
    config.partitioner.technique = technique;
    config.partitioner.sources = sources;
    config.partitioner.workers = 10;
    config.messages = messages;
    auto result = RunRouting(config, feed);
    EXPECT_TRUE(result.ok());
    return result->imbalance.avg_fraction;
  };
  double g = run(partition::Technique::kPkgGlobal, 1);
  double l5 = run(partition::Technique::kPkgLocal, 5);
  double h = run(partition::Technique::kHashing, 1);
  EXPECT_LT(l5, h / 50) << "local PKG far better than hashing";
  EXPECT_LT(l5, 12 * g + 1e-4) << "local within ~order of magnitude of G";
}

TEST(ExperimentsTest, Table1RowsMatchPresets) {
  auto rows = RunTable1(/*seed=*/42, /*full=*/false);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 8u);
  for (const auto& row : *rows) {
    EXPECT_GT(row.messages, 0u);
    EXPECT_GT(row.keys, 0u);
    EXPECT_GT(row.p1_percent, 0.0);
  }
  // Fitted datasets must land near the paper p1 (sampling noise aside).
  EXPECT_NEAR((*rows)[0].p1_percent, 9.32, 1.0);   // WP
  EXPECT_NEAR((*rows)[1].p1_percent, 2.67, 0.5);   // TW
}

TEST(ExperimentsTest, DefaultScalesAreRunnable) {
  for (const auto& spec : workload::AllDatasets()) {
    double scale = DefaultScale(spec.id, false);
    EXPECT_GT(scale, 0.0);
    EXPECT_LE(scale, 1.0);
    EXPECT_LE(workload::ScaledMessages(spec, scale), 5000000u)
        << spec.symbol << " default scale too slow for tests/benches";
  }
}

TEST(ExperimentsTest, Fig5aSmallRunHasPaperShape) {
  Fig5aOptions options;
  options.cpu_delay_ms = {0.1, 1.0};
  options.messages = 20000;
  options.scale = 0.002;
  auto cells = RunFig5a(options);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 6u);  // 3 techniques x 2 delays
  auto find = [&](const std::string& t, double d) -> const Fig5aCell& {
    for (const auto& c : *cells) {
      if (c.technique == t && c.cpu_delay_ms == d) return c;
    }
    ADD_FAILURE() << "missing cell " << t << " " << d;
    return (*cells)[0];
  };
  // PKG and SG sustain higher throughput than KG at the heavy delay.
  EXPECT_GT(find("PKG", 1.0).throughput_per_s,
            find("KG", 1.0).throughput_per_s);
  EXPECT_GT(find("SG", 1.0).throughput_per_s,
            find("KG", 1.0).throughput_per_s);
  // Higher delay lowers everyone's throughput.
  EXPECT_GT(find("PKG", 0.1).throughput_per_s,
            find("PKG", 1.0).throughput_per_s * 0.8);
}

}  // namespace
}  // namespace simulation
}  // namespace pkgstream
