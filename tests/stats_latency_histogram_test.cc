// Copyright 2026 The pkgstream Authors.
// Unit tests for the log-bucketed latency histogram.

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/latency_histogram.h"

namespace pkgstream {
namespace stats {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
  // Quantiles return the bucket upper bound: within ~3% of 100.
  EXPECT_NEAR(static_cast<double>(h.P50()), 100.0, 4.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h(1 << 20, 32);
  for (uint64_t v = 0; v < 32; ++v) h.Record(v);
  // Values below sub_buckets are stored exactly.
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.999), 31u);
}

TEST(LatencyHistogramTest, QuantileBoundedRelativeError) {
  LatencyHistogram h;
  Rng rng(42);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = 1 + rng.UniformInt(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    uint64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    uint64_t approx = h.Quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05 + 2)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MeanIsExact) {
  LatencyHistogram h;
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
    sum += v;
  }
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(LatencyHistogramTest, SaturationClamps) {
  LatencyHistogram h(/*max_value=*/1024, /*sub_buckets=*/16);
  h.Record(1 << 20);
  EXPECT_EQ(h.saturated(), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.Quantile(1.0), 1024u + 64u);
}

TEST(LatencyHistogramTest, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(static_cast<double>(a.P50()), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(a.Quantile(0.99)), 1000.0, 40.0);
}

TEST(LatencyHistogramTest, ClearResets) {
  LatencyHistogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(LatencyHistogramTest, QuantileClampsArguments) {
  LatencyHistogram h;
  h.Record(50);
  EXPECT_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(LatencyHistogramTest, MonotoneQuantiles) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) h.Record(1 + rng.UniformInt(100000));
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    uint64_t v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LatencyHistogramTest, MergeRejectsDifferentMaxValueSameCellCount) {
  // 1010 and 1023 land in the same top cell at 32 sub-buckets, so both
  // histograms allocate identical counts_ arrays — only an explicit
  // max_value comparison can tell them apart (they clamp differently).
  LatencyHistogram a(/*max_value=*/1010, /*sub_buckets=*/32);
  LatencyHistogram b(/*max_value=*/1023, /*sub_buckets=*/32);
  EXPECT_DEATH(a.Merge(b), "geometries differ");
}

TEST(LatencyHistogramTest, MergeRejectsDifferentSubBuckets) {
  LatencyHistogram a(1 << 20, 16);
  LatencyHistogram b(1 << 20, 32);
  EXPECT_DEATH(a.Merge(b), "geometries differ");
}

TEST(LatencyHistogramTest, TopQuantileNeverExceedsRecordedMax) {
  // The bucket upper bound overshoots the largest recorded value by up to
  // the bucket width; Quantile must clamp to the exact max instead of
  // inventing an observation nobody made.
  LatencyHistogram h;
  h.Record(1000);  // bucket [993, 1024] at 32 sub-buckets
  EXPECT_EQ(h.Quantile(1.0), 1000u);
  EXPECT_EQ(h.P999(), 1000u);
  h.Record(3);
  EXPECT_EQ(h.Quantile(1.0), 1000u);
}

TEST(LatencyHistogramTest, PowerOfTwoBoundaries) {
  // Exercise values at 2^k - 1, 2^k, 2^k + 1 around every super-bucket
  // transition: each must be recorded, never lost, and quantile lookups
  // must bound them within one sub-bucket width.
  LatencyHistogram h(1ULL << 30, 32);
  std::vector<uint64_t> values;
  for (uint32_t k = 1; k < 30; ++k) {
    const uint64_t p = 1ULL << k;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + 1);
  }
  for (uint64_t v : values) h.Record(v);
  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.saturated(), 0u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), (1ULL << 29) + 1);
  EXPECT_EQ(h.Quantile(1.0), (1ULL << 29) + 1);
}

TEST(LatencyHistogramTest, MaxValueAtBucketBoundaryIsRepresentable) {
  // max_value exactly a power of two starts a fresh super-bucket; the
  // constructor's right-sizing must still cover it (and the assert that
  // the top cell spans max_value must hold).
  for (uint64_t max : {1ULL << 10, (1ULL << 10) + 1, (1ULL << 10) - 1}) {
    LatencyHistogram h(max, 32);
    h.Record(max);
    h.Record(max + 5);  // clamps
    EXPECT_EQ(h.saturated(), 1u);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.Quantile(1.0), max);
  }
}

TEST(LatencyHistogramTest, SaturatedMergePreservesClampAndCounts) {
  LatencyHistogram a(/*max_value=*/1024, /*sub_buckets=*/16);
  LatencyHistogram b(/*max_value=*/1024, /*sub_buckets=*/16);
  a.Record(1u << 20);
  b.Record(1u << 25);
  b.Record(512);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.saturated(), 2u);
  // Both saturated observations were clamped to 1024 before recording.
  EXPECT_EQ(a.max(), 1024u);
  EXPECT_EQ(a.Quantile(1.0), 1024u);
}

TEST(LatencyHistogramTest, QuantilesTrackExactSortedReference) {
  // Random streams over several magnitudes: every quantile must stay
  // within one bucket width (~1/sub_buckets relative) of the exact
  // order statistic from the sorted reference.
  for (uint64_t seed : {1u, 2u, 3u}) {
    LatencyHistogram h(1ULL << 30, 32);
    Rng rng(seed);
    std::vector<uint64_t> values;
    for (int i = 0; i < 20000; ++i) {
      // Log-uniform: magnitudes from 1 to ~2^28.
      const uint32_t bits = static_cast<uint32_t>(rng.UniformInt(28));
      const uint64_t v = 1 + rng.UniformInt((1ULL << bits) + 1);
      values.push_back(v);
      h.Record(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
      const uint64_t exact =
          values[static_cast<size_t>(q * (values.size() - 1))];
      const double approx = static_cast<double>(h.Quantile(q));
      EXPECT_NEAR(approx, static_cast<double>(exact),
                  static_cast<double>(exact) * (1.0 / 32) + 2.0)
          << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(LatencyHistogramTest, ClearThenMergeRoundTrips) {
  // h2 = clone of h1 via Merge-into-empty must agree on every statistic;
  // Clear must make the target reusable as a Merge destination.
  LatencyHistogram h1(1 << 20, 32);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) h1.Record(1 + rng.UniformInt(1 << 19));
  LatencyHistogram h2(1 << 20, 32);
  h2.Record(7);  // stale content, then reset
  h2.Clear();
  h2.Merge(h1);
  EXPECT_EQ(h2.count(), h1.count());
  EXPECT_EQ(h2.min(), h1.min());
  EXPECT_EQ(h2.max(), h1.max());
  EXPECT_DOUBLE_EQ(h2.mean(), h1.mean());
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    EXPECT_EQ(h2.Quantile(q), h1.Quantile(q)) << "q=" << q;
  }
  // Merging the clone back doubles every count but moves no quantile.
  h1.Merge(h2);
  EXPECT_EQ(h1.count(), 2 * h2.count());
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    EXPECT_EQ(h1.Quantile(q), h2.Quantile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace stats
}  // namespace pkgstream
