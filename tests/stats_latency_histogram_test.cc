// Copyright 2026 The pkgstream Authors.
// Unit tests for the log-bucketed latency histogram.

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/latency_histogram.h"

namespace pkgstream {
namespace stats {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
  // Quantiles return the bucket upper bound: within ~3% of 100.
  EXPECT_NEAR(static_cast<double>(h.P50()), 100.0, 4.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h(1 << 20, 32);
  for (uint64_t v = 0; v < 32; ++v) h.Record(v);
  // Values below sub_buckets are stored exactly.
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.999), 31u);
}

TEST(LatencyHistogramTest, QuantileBoundedRelativeError) {
  LatencyHistogram h;
  Rng rng(42);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = 1 + rng.UniformInt(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    uint64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    uint64_t approx = h.Quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05 + 2)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MeanIsExact) {
  LatencyHistogram h;
  uint64_t sum = 0;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
    sum += v;
  }
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(LatencyHistogramTest, SaturationClamps) {
  LatencyHistogram h(/*max_value=*/1024, /*sub_buckets=*/16);
  h.Record(1 << 20);
  EXPECT_EQ(h.saturated(), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.Quantile(1.0), 1024u + 64u);
}

TEST(LatencyHistogramTest, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(static_cast<double>(a.P50()), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(a.Quantile(0.99)), 1000.0, 40.0);
}

TEST(LatencyHistogramTest, ClearResets) {
  LatencyHistogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(LatencyHistogramTest, QuantileClampsArguments) {
  LatencyHistogram h;
  h.Record(50);
  EXPECT_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

TEST(LatencyHistogramTest, MonotoneQuantiles) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) h.Record(1 + rng.UniformInt(100000));
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    uint64_t v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace stats
}  // namespace pkgstream
