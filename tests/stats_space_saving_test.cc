// Copyright 2026 The pkgstream Authors.
// Hardening suite for the SPACESAVING sketch (stats/space_saving.h): the
// two Metwally guarantees — true <= Estimate <= true + MinCount, and every
// key above m/c tracked — are load-bearing for the D-Choices heavy-hitter
// classifier (partition/heavy_hitter_pkg.cc derives per-key choice counts
// from Estimate/processed), so they are checked here as *running*
// invariants under adversarial eviction churn, not just at end of stream.
// The Merge tests pin the Berinde combine rule including the one-sided-key
// case: a key tracked in only one full summary must absorb the absent
// summary's MinCount() into count and error, or the upper bound silently
// breaks after a merge (a real bug this suite was written against).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "stats/space_saving.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace stats {
namespace {

/// Drives a sketch and an exact table in lockstep, checking the
/// overestimate bound for every tracked key after every `check_period`
/// additions (checking after every Add keeps the suite honest but cheap
/// streams only).
class CrossCheck {
 public:
  explicit CrossCheck(size_t capacity) : ss_(capacity) {}

  void Add(Key key) {
    ss_.Add(key);
    ++truth_[key];
  }

  /// The Metwally bounds, for every tracked key and a set of probes:
  ///   true <= count <= true + min_count   and   count - error <= true.
  void CheckBounds(const char* where) {
    const uint64_t floor = ss_.MinCount();
    for (const auto& e : ss_.TopK(0)) {
      const uint64_t true_count = truth_.count(e.key) ? truth_[e.key] : 0;
      EXPECT_GE(e.count, true_count) << where << ": key " << e.key;
      EXPECT_LE(e.count, true_count + floor) << where << ": key " << e.key;
      EXPECT_LE(e.count - e.error, true_count)
          << where << ": key " << e.key << " (count-error lower bound)";
    }
    // Untracked keys estimate MinCount — an upper bound on anything absent.
    for (const auto& [key, count] : truth_) {
      EXPECT_GE(ss_.Estimate(key), count) << where << ": key " << key;
    }
  }

  SpaceSaving& sketch() { return ss_; }
  const std::unordered_map<Key, uint64_t>& truth() const { return truth_; }

 private:
  SpaceSaving ss_;
  std::unordered_map<Key, uint64_t> truth_;
};

TEST(SpaceSavingHardeningTest, BoundsHoldUnderAdversarialEvictionChurn) {
  // Worst case for SPACESAVING: a rotating cohort of "almost heavy" keys
  // that each arrive just often enough to evict the previous cohort, so
  // every counter is recycled many times and errors pile up. The bound
  // must hold at every checkpoint anyway.
  CrossCheck cc(16);
  uint64_t next = 1000;
  for (int round = 0; round < 200; ++round) {
    // A fresh cohort of 16 keys, each seen twice: evicts everything.
    for (int i = 0; i < 16; ++i) {
      ++next;
      cc.Add(next);
      cc.Add(next);
    }
    // Two persistent keys fight through the churn.
    cc.Add(1);
    cc.Add(2);
    if (round % 10 == 0) cc.CheckBounds("churn");
  }
  cc.CheckBounds("churn end");
}

TEST(SpaceSavingHardeningTest, BoundsHoldOnSawtoothPromotions) {
  // Keys that oscillate between tracked and evicted: each key returns
  // exactly when its old counter has been recycled, maximizing inherited
  // error. Exercises eviction -> re-insert -> increment chains.
  CrossCheck cc(8);
  for (int sweep = 0; sweep < 64; ++sweep) {
    for (Key key = 0; key < 24; ++key) {  // 3x capacity, round-robin
      cc.Add(key);
    }
    cc.CheckBounds("sawtooth");
  }
}

TEST(SpaceSavingHardeningTest, ZipfStreamCrossChecksExactCounts) {
  // Deterministic skewed stream: the sketch must (a) keep the bounds for
  // every tracked key and (b) rank the true head correctly — head keys on
  // a Zipf stream clear the m/c guarantee, so they cannot be missing.
  const std::vector<double> weights = workload::ZipfWeights(2000, 1.25);
  std::vector<double> cdf(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) cdf[i] = (acc += weights[i]);
  Rng rng(7);
  CrossCheck cc(64);
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.UniformDouble() * acc;
    const size_t key =
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin();
    cc.Add(static_cast<Key>(key));
    if (i % 20000 == 0) cc.CheckBounds("zipf");
  }
  cc.CheckBounds("zipf end");
  // Guaranteed heavy hitters: true count > m/c = 200000/64 = 3125.
  for (const auto& [key, count] : cc.truth()) {
    if (count > 200000 / 64) {
      EXPECT_TRUE(cc.sketch().Contains(key))
          << "guaranteed heavy hitter " << key << " (count " << count
          << ") missing";
    }
  }
}

TEST(SpaceSavingHardeningTest, RandomizedStreamsKeepBoundsAcrossSeeds) {
  for (uint64_t seed : {1u, 42u, 99u}) {
    Rng rng(seed);
    CrossCheck cc(12);
    for (int i = 0; i < 20000; ++i) {
      // Mixed regime: a small hot set, a medium warm set, a huge cold
      // tail — keeps counters constantly contested.
      Key key;
      const double u = rng.UniformDouble();
      if (u < 0.4) {
        key = rng.UniformInt(4);
      } else if (u < 0.7) {
        key = 100 + rng.UniformInt(40);
      } else {
        key = 10000 + rng.UniformInt(100000);
      }
      cc.Add(key);
      if (i % 2000 == 0) cc.CheckBounds("random");
    }
    cc.CheckBounds("random end");
  }
}

TEST(SpaceSavingHardeningTest, MergeKeepsUpperBoundForOneSidedKeys) {
  // Regression: key 7 lives only in summary A; summary B is full, so B's
  // stream may have contained key 7 up to B.MinCount() times. The merged
  // estimate must cover true_A(7) + true_B(7) for ANY B-stream consistent
  // with B's state — i.e. count_merged(7) >= count_A(7) + B.MinCount().
  SpaceSaving a(4);
  for (int i = 0; i < 10; ++i) a.Add(7);
  for (int i = 0; i < 8; ++i) a.Add(8);
  a.Add(9);
  a.Add(10);  // full, MinCount() = 1

  SpaceSaving b(4);
  // B's stream: keys 20..23 plus THREE occurrences of key 7 that get
  // evicted. End state: 7 untracked, MinCount() >= 3.
  for (int i = 0; i < 3; ++i) b.Add(7);
  for (int i = 0; i < 5; ++i) b.Add(20);
  for (int i = 0; i < 5; ++i) b.Add(21);
  for (int i = 0; i < 5; ++i) b.Add(22);
  for (int i = 0; i < 5; ++i) b.Add(23);
  ASSERT_FALSE(b.Contains(7));
  const uint64_t b_floor = b.MinCount();
  ASSERT_GE(b_floor, 3u);

  const uint64_t a7 = a.Entry(7).count;
  a.Merge(b);
  // True total for key 7 is 13; the merged upper bound must cover it.
  ASSERT_TRUE(a.Contains(7));
  EXPECT_GE(a.Entry(7).count, 13u) << "one-sided merge lost the bound";
  EXPECT_GE(a.Entry(7).count, a7 + b_floor);
  // And it must still be a sane overestimate, not unbounded:
  EXPECT_LE(a.Entry(7).count, 13u + a.Entry(7).error);
}

TEST(SpaceSavingHardeningTest, MergeBoundsHoldOnRandomizedSplitStreams) {
  // Property form of the merge guarantee: split one stream across two
  // sketches, merge, and demand true <= count <= true + error for every
  // surviving key (errors already fold in both floors).
  for (uint64_t seed : {3u, 11u, 77u}) {
    Rng rng(seed);
    SpaceSaving a(16);
    SpaceSaving b(16);
    std::unordered_map<Key, uint64_t> truth;
    for (int i = 0; i < 30000; ++i) {
      const Key key = rng.UniformInt(512) < 8 ? rng.UniformInt(8)
                                              : 64 + rng.UniformInt(4000);
      ++truth[key];
      (i % 2 == 0 ? a : b).Add(key);
    }
    a.Merge(b);
    EXPECT_EQ(a.processed(), 30000u);
    for (const auto& e : a.TopK(0)) {
      const uint64_t true_count = truth.count(e.key) ? truth[e.key] : 0;
      EXPECT_GE(e.count, true_count) << "seed " << seed << " key " << e.key;
      EXPECT_LE(e.count - e.error, true_count)
          << "seed " << seed << " key " << e.key;
    }
  }
}

TEST(SpaceSavingHardeningTest, MergeIntoUnderfullSummaryAddsNoPhantomError) {
  // While either summary has spare capacity its MinCount() is 0, so the
  // one-sided floor must degenerate to zero — disjoint under-capacity
  // merges stay exact.
  SpaceSaving a(8);
  SpaceSaving b(8);
  a.Add(1, 5);
  a.Add(2, 3);
  b.Add(3, 4);
  b.Add(1, 2);
  a.Merge(b);
  EXPECT_EQ(a.Entry(1).count, 7u);
  EXPECT_EQ(a.Entry(1).error, 0u);
  EXPECT_EQ(a.Entry(2).count, 3u);
  EXPECT_EQ(a.Entry(2).error, 0u);
  EXPECT_EQ(a.Entry(3).count, 4u);
  EXPECT_EQ(a.Entry(3).error, 0u);
}

}  // namespace
}  // namespace stats
}  // namespace pkgstream
