// Copyright 2026 The pkgstream Authors.
// Unit tests for the stats module: running stats, imbalance tracking,
// frequency tables, agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/agreement.h"
#include "stats/frequency.h"
#include "stats/imbalance.h"
#include "stats/running_stats.h"

namespace pkgstream {
namespace stats {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(ImbalanceOfTest, UniformLoadsHaveZeroImbalance) {
  EXPECT_DOUBLE_EQ(ImbalanceOf({5, 5, 5, 5}), 0.0);
}

TEST(ImbalanceOfTest, PaperDefinition) {
  // I = max - avg = 10 - 5.5 = 4.5
  EXPECT_DOUBLE_EQ(ImbalanceOf({1, 10}), 4.5);
}

TEST(ImbalanceOfTest, SingleWorker) {
  EXPECT_DOUBLE_EQ(ImbalanceOf({42}), 0.0);
}

TEST(ImbalanceTrackerTest, TracksLoads) {
  ImbalanceTracker t(3, 1);
  t.OnRoute(0);
  t.OnRoute(0);
  t.OnRoute(1);
  EXPECT_EQ(t.loads()[0], 2u);
  EXPECT_EQ(t.loads()[1], 1u);
  EXPECT_EQ(t.loads()[2], 0u);
  EXPECT_EQ(t.now(), 3u);
  EXPECT_DOUBLE_EQ(t.CurrentImbalance(), 2.0 - 1.0);
}

TEST(ImbalanceTrackerTest, SummaryAveragesSampledImbalance) {
  ImbalanceTracker t(2, 1);  // sample every message
  t.OnRoute(0);  // loads {1,0}: I = 0.5
  t.OnRoute(0);  // loads {2,0}: I = 1.0
  t.OnRoute(1);  // loads {2,1}: I = 0.5
  t.OnRoute(1);  // loads {2,2}: I = 0.0
  ImbalanceSummary s = t.Finish();
  EXPECT_EQ(s.messages, 4u);
  EXPECT_DOUBLE_EQ(s.avg_imbalance, (0.5 + 1.0 + 0.5 + 0.0) / 4);
  EXPECT_DOUBLE_EQ(s.final_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(s.max_imbalance, 1.0);
  EXPECT_EQ(s.max_load, 2u);
  EXPECT_EQ(s.min_load, 2u);
}

TEST(ImbalanceTrackerTest, FractionAveragesPerSampleFractions) {
  ImbalanceTracker t(2, 1);
  for (int i = 0; i < 10; ++i) t.OnRoute(0);  // all to one worker
  ImbalanceSummary s = t.Finish();
  // I(t) = t/2 at every t, so every sampled fraction I(t)/t is exactly 0.5
  // and so is their average.
  EXPECT_DOUBLE_EQ(s.avg_fraction, 0.5);
}

// Regression: avg_fraction once divided the average of I(t) by the *final*
// t, which disagreed with the per-sample fractions stored in series().
// The summary must be the mean of exactly those fractions.
TEST(ImbalanceTrackerTest, AvgFractionMatchesSeriesMean) {
  ImbalanceTracker t(3, 4);
  for (int i = 0; i < 25; ++i) t.OnRoute(i % 7 == 0 ? 0 : i % 3);
  ImbalanceSummary s = t.Finish();
  ASSERT_FALSE(t.series().empty());
  double sum = 0.0;
  for (const auto& p : t.series()) sum += p.fraction;
  EXPECT_DOUBLE_EQ(s.avg_fraction,
                   sum / static_cast<double>(t.series().size()));
}

TEST(ImbalanceTrackerTest, SeriesRespectsSampleInterval) {
  ImbalanceTracker t(2, 5);
  for (int i = 0; i < 20; ++i) t.OnRoute(i % 2);
  EXPECT_EQ(t.series().size(), 4u);  // at t = 5, 10, 15, 20
  EXPECT_EQ(t.series()[0].t, 5u);
  EXPECT_EQ(t.series()[3].t, 20u);
}

TEST(ImbalanceTrackerTest, FinishSamplesFinalPartialPoint) {
  ImbalanceTracker t(2, 8);
  for (int i = 0; i < 10; ++i) t.OnRoute(0);
  ImbalanceSummary s = t.Finish();
  ASSERT_EQ(t.series().size(), 2u);  // t=8 and final t=10
  EXPECT_EQ(t.series().back().t, 10u);
  EXPECT_DOUBLE_EQ(s.final_imbalance, 10 - 5.0);
}

TEST(ImbalanceTrackerTest, FinishIsIdempotent) {
  ImbalanceTracker t(2, 1);
  t.OnRoute(0);
  ImbalanceSummary a = t.Finish();
  ImbalanceSummary b = t.Finish();
  EXPECT_DOUBLE_EQ(a.avg_imbalance, b.avg_imbalance);
  EXPECT_EQ(t.series().size(), 1u);
}

TEST(FrequencyTableTest, CountsAndTotals) {
  FrequencyTable f;
  f.Add(1);
  f.Add(1);
  f.Add(2);
  f.Add(3, 5);
  EXPECT_EQ(f.total(), 8u);
  EXPECT_EQ(f.distinct(), 3u);
  EXPECT_EQ(f.Count(1), 2u);
  EXPECT_EQ(f.Count(3), 5u);
  EXPECT_EQ(f.Count(99), 0u);
}

TEST(FrequencyTableTest, TopKSortedByCountThenKey) {
  FrequencyTable f;
  f.Add(10, 3);
  f.Add(20, 5);
  f.Add(30, 3);
  auto top = f.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 20u);
  EXPECT_EQ(top[1].first, 10u);  // ties break by smaller key
  EXPECT_EQ(top[2].first, 30u);
}

TEST(FrequencyTableTest, TopKLimits) {
  FrequencyTable f;
  for (Key k = 0; k < 100; ++k) f.Add(k, k + 1);
  auto top = f.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].second, 100u);
  EXPECT_EQ(top[2].second, 98u);
}

TEST(FrequencyTableTest, HeadProbability) {
  FrequencyTable f;
  f.Add(1, 9);
  f.Add(2, 1);
  EXPECT_DOUBLE_EQ(f.HeadProbability(), 0.9);
  FrequencyTable empty;
  EXPECT_DOUBLE_EQ(empty.HeadProbability(), 0.0);
}

TEST(AgreementTrackerTest, PerfectAgreement) {
  AgreementTracker a;
  for (int i = 0; i < 10; ++i) a.OnMessage(3, 3);
  EXPECT_DOUBLE_EQ(a.MatchRate(), 1.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(), 1.0);
}

TEST(AgreementTrackerTest, NoAgreement) {
  AgreementTracker a;
  for (int i = 0; i < 10; ++i) a.OnMessage(1, 2);
  EXPECT_DOUBLE_EQ(a.MatchRate(), 0.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(), 0.0);
}

TEST(AgreementTrackerTest, JaccardFormula) {
  AgreementTracker a;
  a.OnMessage(1, 1);
  a.OnMessage(1, 2);
  // matches=1, messages=2: J = 1 / (4 - 1) = 1/3.
  EXPECT_DOUBLE_EQ(a.Jaccard(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.MatchRate(), 0.5);
}

TEST(AgreementTrackerTest, EmptyIsFullAgreement) {
  AgreementTracker a;
  EXPECT_DOUBLE_EQ(a.Jaccard(), 1.0);
  EXPECT_DOUBLE_EQ(a.MatchRate(), 1.0);
}

}  // namespace
}  // namespace stats
}  // namespace pkgstream
