// Copyright 2026 The pkgstream Authors.
// Numerical validation of the paper's Section IV analysis. These tests pin
// the *theory*, not the implementation: each one recreates a construction
// from the analysis and checks the predicted asymptotic behaviour at
// finite scale.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "partition/load_estimator.h"
#include "partition/pkg.h"
#include "stats/imbalance.h"

namespace pkgstream {
namespace {

using partition::GlobalLoadEstimator;
using partition::PartialKeyGrouping;
using partition::PkgOptions;

std::unique_ptr<PartialKeyGrouping> Greedy2(uint32_t workers, uint64_t seed) {
  PkgOptions options;
  options.hash_seed = seed;
  return std::make_unique<PartialKeyGrouping>(
      1, workers, std::make_unique<GlobalLoadEstimator>(1, workers), options);
}

TEST(TheoryTest, HotKeyLowerBound) {
  // Section IV: "if p1 > 2/n, the expected imbalance at time m will be
  // lower bounded by (p1/2 - 1/n) m ... irrespective of the placement
  // scheme". Construct exactly that: one key with p1 = 0.5, n = 10.
  const uint32_t n = 10;
  const double p1 = 0.5;
  const uint64_t m = 200000;
  auto pkg = Greedy2(n, 42);
  Rng rng(7);
  std::vector<uint64_t> loads(n, 0);
  for (uint64_t i = 0; i < m; ++i) {
    Key k = rng.Bernoulli(p1) ? 0 : 1 + rng.UniformInt(100000);
    ++loads[pkg->Route(0, k)];
  }
  double bound = (p1 / 2 - 1.0 / n) * static_cast<double>(m);
  EXPECT_GE(stats::ImbalanceOf(loads), bound * 0.9);  // 10% sampling slack
}

TEST(TheoryTest, OverpopulatedBinSetForUniformNKeys) {
  // Section IV: with K = n uniform keys, the candidate-bin set B has
  // expected size n(1 - 1/e^2) ~ 0.865n, and the imbalance is at least
  // ~0.156m because the unused bins never receive anything.
  const uint32_t n = 200;
  HashFamily family(2, n, 123);
  std::set<uint32_t> used;
  for (Key k = 0; k < n; ++k) {
    used.insert(family.Bucket(0, k));
    used.insert(family.Bucket(1, k));
  }
  double expected = n * (1.0 - 1.0 / (M_E * M_E));
  EXPECT_NEAR(static_cast<double>(used.size()), expected, 0.08 * n);

  // And the induced imbalance grows linearly: m/|B| - m/n per message.
  auto pkg = Greedy2(n, 123);
  Rng rng(3);
  const uint64_t m = 200000;
  std::vector<uint64_t> loads(n, 0);
  for (uint64_t i = 0; i < m; ++i) {
    ++loads[pkg->Route(0, rng.UniformInt(n))];
  }
  double predicted = static_cast<double>(m) / used.size() -
                     static_cast<double>(m) / n;
  EXPECT_GT(stats::ImbalanceOf(loads), predicted * 0.5);
}

TEST(TheoryTest, SqrtMDeviationWithTwoKeysFourBins) {
  // Section IV's third example: 2 keys of probability 1/2 on n = 4 bins
  // (with disjoint candidate pairs) — even perfect splitting leaves
  // Omega(sqrt(m)) imbalance from binomial deviation between the keys.
  // We place the keys on disjoint pairs by construction (no hashing) and
  // split each key perfectly, so the only imbalance left is the deviation.
  Rng rng(17);
  const uint64_t m = 1000000;
  const int trials = 10;
  int trials_with_sqrt_m_imbalance = 0;
  for (int t = 0; t < trials; ++t) {
    uint64_t count0 = 0;
    for (uint64_t i = 0; i < m; ++i) count0 += rng.Bernoulli(0.5) ? 1 : 0;
    uint64_t count1 = m - count0;
    // Perfect split: each of key i's two bins holds count_i / 2.
    std::vector<uint64_t> loads = {count0 / 2, count0 - count0 / 2,
                                   count1 / 2, count1 - count1 / 2};
    double imbalance = stats::ImbalanceOf(loads);
    // Deviation is |Binomial(m,1/2) - m/2| / 2, sd = sqrt(m)/4 = 250 here;
    // 0.1 sqrt(m) = 100 is exceeded with probability ~0.69 per trial.
    if (imbalance >= 0.1 * std::sqrt(static_cast<double>(m))) {
      ++trials_with_sqrt_m_imbalance;
    }
    // ... and it never exceeds O(sqrt(m) log) either at this scale.
    EXPECT_LT(imbalance, 5.0 * std::sqrt(static_cast<double>(m)));
  }
  // "with constant probability": a solid fraction of trials shows
  // Theta(sqrt(m)) imbalance even under perfect splitting.
  EXPECT_GE(trials_with_sqrt_m_imbalance, 3);
}

TEST(TheoryTest, TwoChoicesExponentiallyBetterThanOneOnDistinctKeys) {
  // Azar et al.: throwing n balls (distinct keys) into n bins gives max
  // load ~ ln n / ln ln n with one choice but ln ln n / ln 2 + O(1) with
  // two. At n = 10000 the one-choice max should be several times larger.
  const uint32_t n = 10000;
  auto d1 = [&] {
    PkgOptions options;
    options.num_choices = 1;
    options.hash_seed = 5;
    return std::make_unique<PartialKeyGrouping>(
        1, n, std::make_unique<GlobalLoadEstimator>(1, n), options);
  }();
  auto d2 = Greedy2(n, 5);
  std::vector<uint64_t> l1(n, 0);
  std::vector<uint64_t> l2(n, 0);
  for (Key k = 0; k < n; ++k) {
    ++l1[d1->Route(0, k)];
    ++l2[d2->Route(0, k)];
  }
  uint64_t max1 = *std::max_element(l1.begin(), l1.end());
  uint64_t max2 = *std::max_element(l2.begin(), l2.end());
  // Predictions: max1 ~ ln n / ln ln n ~ 4.1; max2 ~ log2 ln n ~ 3.2,
  // and in practice max2 is 2 or 3 while max1 is 5-8.
  EXPECT_GE(max1, max2 + 2);
  EXPECT_LE(max2, 4u);
}

TEST(TheoryTest, ImbalanceLinearInMBeyondLimitConstantBelowIt) {
  // Theorem 4.1: below the p1 limit the imbalance is O(m/n) with a small
  // constant (empirically near-zero growth per message); above the limit
  // it grows linearly with a visible slope.
  auto slope = [&](double p1, uint32_t n) {
    auto pkg = Greedy2(n, 9);
    Rng rng(11);
    std::vector<uint64_t> loads(n, 0);
    const uint64_t m = 100000;
    double at_half = 0;
    for (uint64_t i = 0; i < m; ++i) {
      Key k = rng.Bernoulli(p1) ? 0 : 1 + rng.UniformInt(1 << 20);
      ++loads[pkg->Route(0, k)];
      if (i == m / 2) at_half = stats::ImbalanceOf(loads);
    }
    return (stats::ImbalanceOf(loads) - at_half) /
           static_cast<double>(m / 2);
  };
  double below = slope(/*p1=*/0.05, /*n=*/10);  // 0.05 << 2/10
  double above = slope(/*p1=*/0.50, /*n=*/10);  // 0.50 >> 2/10
  EXPECT_LT(below, 0.01);   // essentially flat
  EXPECT_GT(above, 0.10);   // clearly linear (predicted slope 0.15)
}

}  // namespace
}  // namespace pkgstream
