// Copyright 2026 The pkgstream Authors.
// Fixture-driven tests for tools/pkgstream_lint: every rule is proven to
// fire by a minimal tree seeded with exactly one violation, a clean
// fixture tree yields zero findings and byte-stable JSON, and the real
// source tree (PKGSTREAM_SOURCE_DIR) must be lint-clean — the same
// contract the pkgstream_lint_tree ctest and the CI lint job enforce.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "tools/pkgstream_lint_lib.h"

namespace pkgstream {
namespace lint {
namespace {

namespace fs = std::filesystem;

/// A minimal tree that satisfies every rule. Each test mutates one file to
/// seed one violation.
class LintFixture {
 public:
  explicit LintFixture(const std::string& name)
      : root_(fs::path(testing::TempDir()) / ("lint_fixture_" + name)) {
    fs::remove_all(root_);
    fs::create_directories(root_ / "tools");
    Write("tools/placeholder.cc", "// keeps tools/ present\n");
    Write("src/partition/factory.h", R"(// fixture
enum class Technique {
  kAlpha,  ///< demo technique
  kBeta,
};
)");
    Write("src/partition/alpha.h", R"(// fixture
class AlphaPartitioner final : public Partitioner {
 public:
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;
  PartitionerPtr Clone() const override;
};
)");
    Write("tests/partition_route_batch_test.cc", R"(// equivalence matrix
//   Technique::kAlpha Technique::kBeta
)");
    Write("tests/repro_gate_test.cc", R"(// fixture manifest
constexpr BaselineSpec kBaselines[] = {
    {"bench_demo", 1},
};
)");
    Write("CMakeLists.txt",
          "set(PKGSTREAM_REPRO_BENCHES\n  bench_demo)\n");
    Write("bench/baselines/README.md", "# fixture baselines\n");
    Write("bench/baselines/bench_demo.json", ValidBaselineJson("bench_demo"));
  }

  static std::string ValidBaselineJson(const std::string& bench) {
    return std::string("{\n  \"schema_version\": 1,\n  \"bench\": \"") +
           bench +
           "\",\n  \"tolerance\": 0.000001,\n"
           "  \"captured\": {\"metrics\": {\"m\": 1}},\n"
           "  \"invariants\": [{\"name\": \"m nonnegative\", \"type\": "
           "\"ge\", \"left\": \"m\", \"right_const\": 0}]\n}\n";
  }

  void Write(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good()) << "cannot write fixture file " << path;
  }

  std::string Append(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << content;
    return path.string();
  }

  std::string root() const { return root_.string(); }

 private:
  fs::path root_;
};

std::set<std::string> FiredRules(const Report& report) {
  std::set<std::string> rules;
  for (const Finding& f : report.findings) rules.insert(f.rule);
  return rules;
}

TEST(LintFixtureTest, CleanTreeHasZeroFindingsAndStableJson) {
  LintFixture fixture("clean");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->findings.size(), 0u)
      << report->findings[0].file << ": " << report->findings[0].message;
  EXPECT_GT(report->files_scanned, 0u);

  // Machine-readable output: parses back, carries the rule catalog, and is
  // byte-stable across runs (deterministic walk order + sorted findings).
  const std::string json_a = ReportToJson(*report).ToString();
  auto second = RunLint(fixture.root());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(json_a, ReportToJson(*second).ToString());
  auto parsed = JsonValue::Parse(json_a);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* rules = parsed->Find("rules");
  ASSERT_NE(rules, nullptr);
  EXPECT_EQ(rules->size(), Rules().size());
}

TEST(LintFixtureTest, FailsClosedOnNonCheckoutRoot) {
  const fs::path empty = fs::path(testing::TempDir()) / "lint_not_a_repo";
  fs::remove_all(empty);
  fs::create_directories(empty);
  auto report = RunLint(empty.string());
  EXPECT_FALSE(report.ok())
      << "an unrelated directory must be an error, not a clean pass";
}

TEST(LintFixtureTest, RouteBatchWithoutCloneFires) {
  LintFixture fixture("route_batch_clone");
  fixture.Write("src/partition/bad.h", R"(// seeded violation
class BadPartitioner final : public Partitioner {
 public:
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;
};
)");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, "route-batch-clone");
  EXPECT_EQ(report->findings[0].file, "src/partition/bad.h");
  EXPECT_NE(report->findings[0].message.find("BadPartitioner"),
            std::string::npos);
}

TEST(LintFixtureTest, CloneOverridePacifiesRouteBatchRule) {
  LintFixture fixture("route_batch_clone_ok");
  // Same class, with Clone() — and a subclass with neither override, which
  // must also pass (the base-class scalar loop needs no parity proof).
  fixture.Write("src/partition/ok.h", R"(// fine
class OkPartitioner final : public Partitioner {
 public:
  void RouteBatch(SourceId source, const Key* keys, WorkerId* out,
                  size_t n) override;
  PartitionerPtr Clone() const override;
};
class PlainPartitioner final : public Partitioner {
 public:
  WorkerId Route(SourceId source, Key key) override;
};
)");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->findings.size(), 0u);
}

TEST(LintFixtureTest, TechniqueMissingFromEquivalenceMatrixFires) {
  LintFixture fixture("technique_matrix");
  fixture.Write("src/partition/factory.h", R"(// fixture
enum class Technique {
  kAlpha,
  kBeta,
  kGamma,  ///< new technique, not yet in the matrix
};
)");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, "technique-matrix");
  EXPECT_NE(report->findings[0].message.find("kGamma"), std::string::npos);
}

TEST(LintFixtureTest, IntrinsicsOutsideDesignatedTusFire) {
  LintFixture fixture("isa");
  fixture.Write("src/engine/fast_path.cc",
                "#include <immintrin.h>\nint f() { return 0; }\n");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, "isa-confinement");
  EXPECT_EQ(report->findings[0].file, "src/engine/fast_path.cc");
  EXPECT_EQ(report->findings[0].line, 1u);
}

TEST(LintFixtureTest, IntrinsicsInDesignatedTuAndInCommentsAreFine) {
  LintFixture fixture("isa_ok");
  // The designated TU may use intrinsics; prose mentioning them may not
  // trip the token scan.
  fixture.Write("src/common/hash_avx2.cc",
                "#include <immintrin.h>\n__m256i v;\n");
  fixture.Write("src/engine/notes.cc",
                "// the avx2 TU uses _mm256_mul_epu32 partial products\n"
                "int g() { return 1; }\n");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->findings.size(), 0u);
}

TEST(LintFixtureTest, HotpathHeapTokenFires) {
  LintFixture fixture("hotpath");
  fixture.Write("src/partition/pkg.cc",
                "int* leak() { return new int(7); }\n");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, "hotpath-tokens");
  EXPECT_EQ(report->findings[0].file, "src/partition/pkg.cc");
  EXPECT_EQ(report->findings[0].line, 1u);
}

TEST(LintFixtureTest, JustifiedAllowMarkerPacifiesHotpathRule) {
  LintFixture fixture("hotpath_allow");
  const std::string marker = std::string("lint:") + "allow(hotpath-tokens)";
  fixture.Write("src/partition/pkg.cc",
                "// " + marker + ": one-time setup allocation\n" +
                    "int* setup() { return new int(7); }\n");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->findings.size(), 0u);

  // The same marker with no justification is itself a finding: every
  // exemption must say why.
  fixture.Write("src/partition/pkg.cc",
                "// " + marker + "\n" + "int* setup() { return new int(7); }\n");
  auto unjustified = RunLint(fixture.root());
  ASSERT_TRUE(unjustified.ok());
  ASSERT_FALSE(unjustified->findings.empty());
  EXPECT_NE(unjustified->findings[0].message.find("justification"),
            std::string::npos);
}

TEST(LintFixtureTest, UnknownRuleInAllowMarkerFires) {
  LintFixture fixture("bad_marker");
  const std::string marker = std::string("lint:") + "allow(bogus-rule)";
  fixture.Write("src/engine/foo.cc",
                "// " + marker + ": pacify nothing\nint h();\n");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_NE(report->findings[0].message.find("unknown rule"),
            std::string::npos);
}

TEST(LintFixtureTest, MalformedBaselineSchemaFires) {
  LintFixture fixture("baseline_schema");
  // Empty invariants: a baseline that gates nothing.
  fixture.Write("bench/baselines/bench_demo.json",
                "{\n  \"schema_version\": 1,\n  \"bench\": \"bench_demo\",\n"
                "  \"captured\": {\"metrics\": {\"m\": 1}},\n"
                "  \"invariants\": []\n}\n");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, "baseline-schema");
  EXPECT_NE(report->findings[0].message.find("invariants"),
            std::string::npos);
}

TEST(LintFixtureTest, BaselineBenchFieldMustMatchFilename) {
  LintFixture fixture("baseline_misnamed");
  fixture.Write("bench/baselines/bench_demo.json",
                LintFixture::ValidBaselineJson("bench_other"));
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->findings.empty());
  EXPECT_EQ(report->findings[0].rule, "baseline-schema");
  EXPECT_NE(report->findings[0].message.find("filename"), std::string::npos);
}

TEST(LintFixtureTest, StrayFileInBaselinesDirFires) {
  LintFixture fixture("baseline_stray");
  fixture.Write("bench/baselines/notes.txt", "scratch\n");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, "baseline-schema");
  EXPECT_EQ(report->findings[0].file, "bench/baselines/notes.txt");
}

TEST(LintFixtureTest, UnreferencedBaselineFires) {
  LintFixture fixture("baseline_manifest");
  fixture.Write("bench/baselines/bench_orphan.json",
                LintFixture::ValidBaselineJson("bench_orphan"));
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  // Two findings: not in CMake's repro pipeline, not in the test manifest.
  ASSERT_EQ(report->findings.size(), 2u);
  for (const Finding& f : report->findings) {
    EXPECT_EQ(f.rule, "baseline-manifest");
    EXPECT_EQ(f.file, "bench/baselines/bench_orphan.json");
  }
}

TEST(LintFixtureTest, NewlyAddedBaselineIsCoveredWithZeroRuleEdits) {
  // The baseline rules are directory-driven: committing a new
  // <bench>.json and wiring it into PKGSTREAM_REPRO_BENCHES plus the
  // kBaselines manifest must lint clean without touching the linter —
  // and leaving either anchor stale must fire. This is the contract a
  // new bench (e.g. bench_threaded_manyworkers) relies on.
  LintFixture fixture("baseline_new_bench");
  fixture.Write("bench/baselines/bench_manyworkers.json",
                LintFixture::ValidBaselineJson("bench_manyworkers"));
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 2u);  // not yet wired anywhere

  fixture.Write("CMakeLists.txt",
                "set(PKGSTREAM_REPRO_BENCHES\n  bench_demo\n"
                "  bench_manyworkers)\n");
  fixture.Write("tests/repro_gate_test.cc", R"(// fixture manifest
constexpr BaselineSpec kBaselines[] = {
    {"bench_demo", 1},
    {"bench_manyworkers", 30},
};
)");
  report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->findings.empty())
      << report->findings[0].rule << ": " << report->findings[0].message;
}

TEST(LintFixtureTest, ManifestEntryWithoutBaselineFileFires) {
  LintFixture fixture("baseline_ghost");
  fixture.Write("tests/repro_gate_test.cc", R"(// fixture manifest
constexpr BaselineSpec kBaselines[] = {
    {"bench_demo", 1},
    {"bench_ghost", 2},
};
)");
  auto report = RunLint(fixture.root());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].rule, "baseline-manifest");
  EXPECT_NE(report->findings[0].message.find("bench_ghost"),
            std::string::npos);
}

TEST(LintScrubTest, StripsCommentsStringsAndRawStrings) {
  const std::string src =
      "int a; // new mutex\n"
      "/* rand() srand() */ int b = 1'000'000;\n"
      "const char* s = \"new in a string\";\n"
      "const char* r = R\"(malloc in a raw string)\";\n"
      "char c = 'n';\n";
  const std::string scrubbed = ScrubSource(src);
  EXPECT_EQ(scrubbed.find("new"), std::string::npos);
  EXPECT_EQ(scrubbed.find("mutex"), std::string::npos);
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_EQ(scrubbed.find("malloc"), std::string::npos);
  // Code survives, newlines (line numbers) survive.
  EXPECT_NE(scrubbed.find("int a;"), std::string::npos);
  EXPECT_NE(scrubbed.find("1'000'000"), std::string::npos);
  EXPECT_EQ(std::count(scrubbed.begin(), scrubbed.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
}

// The dogfood gate: this source tree is lint-clean. Mirrors the
// pkgstream_lint_tree ctest (which runs the CLI) so the contract also
// holds when only the gtest suites run.
TEST(LintRealTreeTest, SourceTreeIsClean) {
  auto report = RunLint(PKGSTREAM_SOURCE_DIR);
  ASSERT_TRUE(report.ok()) << report.status();
  for (const Finding& f : report->findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_GT(report->files_scanned, 100u)
      << "suspiciously few files scanned — wrong PKGSTREAM_SOURCE_DIR?";
}

}  // namespace
}  // namespace lint
}  // namespace pkgstream
