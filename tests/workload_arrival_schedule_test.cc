// Copyright 2026 The pkgstream Authors.
// Unit tests for the open-loop arrival schedules (workload/arrival_schedule.h):
// determinism/replayability, batch==scalar equivalence, rate correctness,
// and the on-off process's window structure.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "workload/arrival_schedule.h"

namespace pkgstream {
namespace workload {
namespace {

std::vector<uint64_t> Take(ArrivalSchedule* s, size_t n) {
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = s->NextMicros();
  return out;
}

TEST(ConstantRateScheduleTest, ExactIndexBasedTimes) {
  ConstantRateSchedule s(/*rate_per_sec=*/1000.0);  // 1 msg per ms
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(s.NextMicros(), i * 1000);
  }
}

TEST(ConstantRateScheduleTest, NonIntegerRateNeverDrifts) {
  // 3 msgs/sec -> gaps of 333333/333334us; message i must sit at exactly
  // floor(i * 1e6 / 3) no matter how far the stream runs (indexed, not
  // accumulated).
  ConstantRateSchedule s(3.0);
  uint64_t last = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    last = s.NextMicros();
  }
  EXPECT_EQ(last, static_cast<uint64_t>(9999ull * 1000000 / 3));
}

TEST(ConstantRateScheduleTest, BatchMatchesScalarMidStream) {
  ConstantRateSchedule a(12345.0);
  ConstantRateSchedule b(12345.0);
  (void)Take(&a, 7);  // desynchronize the starting index
  std::vector<uint64_t> scalar = Take(&a, 100);
  (void)Take(&b, 7);
  std::vector<uint64_t> batch(100);
  b.NextBatchMicros(batch.data(), batch.size());
  EXPECT_EQ(scalar, batch);
}

TEST(PoissonScheduleTest, SameSeedReplaysExactly) {
  PoissonSchedule a(50000.0, /*seed=*/7);
  PoissonSchedule b(50000.0, /*seed=*/7);
  EXPECT_EQ(Take(&a, 1000), Take(&b, 1000));
}

TEST(PoissonScheduleTest, DifferentSeedsDiffer) {
  PoissonSchedule a(50000.0, 7);
  PoissonSchedule b(50000.0, 8);
  EXPECT_NE(Take(&a, 100), Take(&b, 100));
}

TEST(PoissonScheduleTest, NondecreasingFromZero) {
  PoissonSchedule s(100000.0, 3);
  uint64_t prev = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t t = s.NextMicros();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(PoissonScheduleTest, MeanGapMatchesRate) {
  // 20k/s -> mean gap 50us; over 100k arrivals the sample mean must land
  // within a few percent (fixed seed: no flakiness).
  const double rate = 20000.0;
  PoissonSchedule s(rate, 42);
  const size_t n = 100000;
  uint64_t last = 0;
  for (size_t i = 0; i < n; ++i) last = s.NextMicros();
  const double mean_gap = static_cast<double>(last) / static_cast<double>(n);
  EXPECT_NEAR(mean_gap, 1e6 / rate, 0.05 * (1e6 / rate));
}

TEST(PoissonScheduleTest, BatchMatchesScalarMidStream) {
  PoissonSchedule a(30000.0, 11);
  PoissonSchedule b(30000.0, 11);
  (void)Take(&a, 13);
  std::vector<uint64_t> scalar = Take(&a, 500);
  (void)Take(&b, 13);
  std::vector<uint64_t> batch(500);
  b.NextBatchMicros(batch.data(), batch.size());
  EXPECT_EQ(scalar, batch);
}

TEST(OnOffScheduleTest, SameSeedReplaysExactly) {
  OnOffSchedule a(80000.0, 2000.0, 10000, 40000, 5);
  OnOffSchedule b(80000.0, 2000.0, 10000, 40000, 5);
  EXPECT_EQ(Take(&a, 2000), Take(&b, 2000));
}

TEST(OnOffScheduleTest, SilentOffWindowsHaveNoArrivals) {
  // rate_off = 0: every arrival must land inside an ON window.
  const uint64_t on = 10000, off = 40000;
  OnOffSchedule s(100000.0, 0.0, on, off, 17);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t t = s.NextMicros();
    EXPECT_LT(t % (on + off), on) << "arrival at " << t << " in OFF window";
  }
}

TEST(OnOffScheduleTest, BurstsConcentrateInOnWindows) {
  // ON at 100k/s for 10ms, OFF at 1k/s for 40ms: ~99.6% of arrivals belong
  // to ON windows even though ON covers only 20% of the time.
  const uint64_t on = 10000, off = 40000;
  OnOffSchedule s(100000.0, 1000.0, on, off, 23);
  size_t in_on = 0;
  const size_t n = 20000;
  for (size_t i = 0; i < n; ++i) {
    if (s.NextMicros() % (on + off) < on) ++in_on;
  }
  EXPECT_GT(static_cast<double>(in_on) / static_cast<double>(n), 0.9);
}

TEST(OnOffScheduleTest, LongRunRateMatchesDutyCycle) {
  // Average rate = (r_on * t_on + r_off * t_off) / (t_on + t_off).
  const double r_on = 50000.0, r_off = 5000.0;
  const uint64_t on = 20000, off = 30000;
  OnOffSchedule s(r_on, r_off, on, off, 9);
  const size_t n = 100000;
  uint64_t last = 0;
  for (size_t i = 0; i < n; ++i) last = s.NextMicros();
  const double expected_rate =
      (r_on * static_cast<double>(on) + r_off * static_cast<double>(off)) /
      (static_cast<double>(on + off) * 1e6);
  const double observed_rate =
      static_cast<double>(n) / static_cast<double>(last);
  EXPECT_NEAR(observed_rate, expected_rate, 0.05 * expected_rate);
}

TEST(ArrivalScheduleTest, DefaultBatchForwardsToScalar) {
  // OnOffSchedule does not override NextBatchMicros; the base default must
  // yield exactly the scalar sequence.
  OnOffSchedule a(60000.0, 1000.0, 5000, 5000, 31);
  OnOffSchedule b(60000.0, 1000.0, 5000, 5000, 31);
  std::vector<uint64_t> scalar = Take(&a, 300);
  std::vector<uint64_t> batch(300);
  b.NextBatchMicros(batch.data(), batch.size());
  EXPECT_EQ(scalar, batch);
}

TEST(ArrivalScheduleTest, NamesAreDescriptive) {
  EXPECT_EQ(ConstantRateSchedule(8000.0).Name(), "constant(rate=8000/s)");
  EXPECT_EQ(PoissonSchedule(32000.0, 1).Name(), "poisson(rate=32000/s)");
  EXPECT_NE(OnOffSchedule(1000.0, 10.0, 5, 5, 1).Name().find("onoff"),
            std::string::npos);
}

}  // namespace
}  // namespace workload
}  // namespace pkgstream
