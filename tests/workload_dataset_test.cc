// Copyright 2026 The pkgstream Authors.
// Unit tests for dataset presets, R-MAT, traces and the word synthesizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "stats/frequency.h"
#include "workload/dataset.h"
#include "workload/rmat.h"
#include "workload/trace.h"
#include "workload/words.h"

namespace pkgstream {
namespace workload {
namespace {

TEST(DatasetTest, AllEightPresetsExist) {
  EXPECT_EQ(AllDatasets().size(), 8u);
  std::set<std::string> symbols;
  for (const auto& spec : AllDatasets()) symbols.insert(spec.symbol);
  EXPECT_TRUE(symbols.count("WP"));
  EXPECT_TRUE(symbols.count("TW"));
  EXPECT_TRUE(symbols.count("CT"));
  EXPECT_TRUE(symbols.count("LN1"));
  EXPECT_TRUE(symbols.count("LN2"));
  EXPECT_TRUE(symbols.count("LJ"));
  EXPECT_TRUE(symbols.count("SL1"));
  EXPECT_TRUE(symbols.count("SL2"));
}

TEST(DatasetTest, PaperStatisticsStored) {
  const auto& wp = GetDataset(DatasetId::kWP);
  EXPECT_EQ(wp.paper_messages, 22000000u);
  EXPECT_EQ(wp.paper_keys, 2900000u);
  EXPECT_NEAR(wp.paper_p1, 0.0932, 1e-9);
  const auto& tw = GetDataset(DatasetId::kTW);
  EXPECT_EQ(tw.paper_messages, 1200000000u);
}

TEST(DatasetTest, FindBySymbol) {
  auto r = FindDataset("LN1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->id, DatasetId::kLN1);
  EXPECT_TRUE(FindDataset("nope").status().IsNotFound());
}

TEST(DatasetTest, ScalingPreservesRatios) {
  const auto& wp = GetDataset(DatasetId::kWP);
  EXPECT_EQ(ScaledMessages(wp, 0.1), 2200000u);
  EXPECT_EQ(ScaledKeys(wp, 0.1), 290000u);
  // Floors kick in for tiny scales.
  EXPECT_GE(ScaledMessages(wp, 1e-9), 1000u);
  EXPECT_GE(ScaledKeys(wp, 1e-9), 100u);
}

TEST(DatasetTest, GraphKeysRoundToPowerOfTwo) {
  const auto& lj = GetDataset(DatasetId::kLJ);
  uint64_t keys = ScaledKeys(lj, 0.01);
  EXPECT_EQ(keys & (keys - 1), 0u) << "not a power of two: " << keys;
}

TEST(DatasetTest, FittedZipfMatchesPaperP1) {
  const auto& wp = GetDataset(DatasetId::kWP);
  auto dist = MakeDistribution(wp, 0.01, 42);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR((*dist)->P1(), wp.paper_p1, 2e-4);
}

TEST(DatasetTest, CtStreamDrifts) {
  const auto& ct = GetDataset(DatasetId::kCT);
  auto stream = MakeKeyStream(ct, 1.0, 42);
  ASSERT_TRUE(stream.ok());
  EXPECT_NE((*stream)->Name().find("drift"), std::string::npos);
}

TEST(DatasetTest, GraphDistributionIsError) {
  const auto& lj = GetDataset(DatasetId::kLJ);
  EXPECT_TRUE(MakeDistribution(lj, 0.01, 42).status().IsInvalidArgument());
  EXPECT_TRUE(MakeEdgeStream(GetDataset(DatasetId::kWP), 0.01, 42)
                  .status()
                  .IsInvalidArgument());
}

TEST(DatasetTest, MeasuredStatsTrackPaper) {
  // Small scale: the measured p1 should be near the paper value because the
  // generator is fitted on it (sampling noise allowed).
  const auto& wp = GetDataset(DatasetId::kWP);
  auto stream = MakeKeyStream(wp, 0.002, 42);
  ASSERT_TRUE(stream.ok());
  DatasetStats stats = MeasureStream(stream->get(), 100000);
  EXPECT_EQ(stats.messages, 100000u);
  EXPECT_NEAR(stats.p1, wp.paper_p1, 0.01);
  EXPECT_GT(stats.distinct_keys, 1000u);
}

TEST(DatasetTest, StreamsAreSeedDeterministic) {
  const auto& ln1 = GetDataset(DatasetId::kLN1);
  auto a = MakeKeyStream(ln1, 0.01, 7);
  auto b = MakeKeyStream(ln1, 0.01, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ((*a)->Next(), (*b)->Next());
}

TEST(RmatTest, EdgesWithinVertexSpace) {
  RmatOptions opt;
  opt.scale = 10;
  RmatEdgeStream stream(opt, 42);
  for (int i = 0; i < 10000; ++i) {
    Edge e = stream.Next();
    EXPECT_LT(e.src, 1024u);
    EXPECT_LT(e.dst, 1024u);
  }
  EXPECT_EQ(stream.NumVertices(), 1024u);
}

TEST(RmatTest, DegreeDistributionIsSkewed) {
  RmatOptions opt;
  opt.scale = 12;
  RmatEdgeStream stream(opt, 42);
  stats::FrequencyTable in_degree;
  const int edges = 200000;
  for (int i = 0; i < edges; ++i) in_degree.Add(stream.Next().dst);
  // Power-law-ish: the hottest vertex should get far more than the mean.
  double mean = static_cast<double>(edges) /
                static_cast<double>(in_degree.distinct());
  auto top = in_degree.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_GT(static_cast<double>(top[0].second), 30.0 * mean);
}

TEST(RmatTest, Deterministic) {
  RmatOptions opt;
  opt.scale = 8;
  RmatEdgeStream a(opt, 5);
  RmatEdgeStream b(opt, 5);
  for (int i = 0; i < 1000; ++i) {
    Edge ea = a.Next();
    Edge eb = b.Next();
    EXPECT_EQ(ea.src, eb.src);
    EXPECT_EQ(ea.dst, eb.dst);
  }
}

TEST(TraceTest, RoundTrip) {
  std::string path = testing::TempDir() + "/pkgstream_trace_test.bin";
  std::vector<Key> keys = {1, 2, 3, 42, 1ULL << 60};
  ASSERT_TRUE(WriteTrace(path, keys).ok());
  auto read = ReadTrace(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, keys);
  std::remove(path.c_str());
}

TEST(TraceTest, StreamingReader) {
  std::string path = testing::TempDir() + "/pkgstream_trace_stream.bin";
  std::vector<Key> keys;
  for (Key k = 0; k < 1000; ++k) keys.push_back(k * 3);
  ASSERT_TRUE(WriteTrace(path, keys).ok());
  auto reader = TraceKeyStream::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->count(), 1000u);
  for (Key k = 0; k < 1000; ++k) EXPECT_EQ((*reader)->Next(), k * 3);
  EXPECT_EQ((*reader)->remaining(), 0u);
  std::remove(path.c_str());
}

TEST(TraceTest, VectorKeyStreamNextBatchReplaysScalarAcrossWrap) {
  std::vector<Key> keys;
  for (Key k = 0; k < 100; ++k) keys.push_back(k * 7 + 1);
  VectorKeyStream scalar(keys, "v");
  VectorKeyStream batch(keys, "v");
  // 64-key batches over a 100-key vector: every batch position relative to
  // the wrap point gets exercised, including batches spanning it.
  const size_t chunk_sizes[] = {1, 7, 64, 29};
  std::vector<Key> buf;
  for (size_t chunk = 0; chunk < 40; ++chunk) {
    const size_t len = chunk_sizes[chunk % 4];
    buf.assign(len, 0);
    batch.NextBatch(buf.data(), len);
    for (size_t j = 0; j < len; ++j) {
      ASSERT_EQ(buf[j], scalar.Next()) << "chunk " << chunk << " pos " << j;
    }
  }
  EXPECT_EQ(batch.ExhaustedOnce(), scalar.ExhaustedOnce());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(batch.Next(), scalar.Next());
}

TEST(TraceTest, TraceKeyStreamNextBatchReplaysScalar) {
  std::string path = testing::TempDir() + "/pkgstream_trace_batch.bin";
  std::vector<Key> keys;
  for (Key k = 0; k < 500; ++k) keys.push_back(k * 11 + 3);
  ASSERT_TRUE(WriteTrace(path, keys).ok());
  auto scalar = TraceKeyStream::Open(path);
  auto batch = TraceKeyStream::Open(path);
  ASSERT_TRUE(scalar.ok() && batch.ok());
  const size_t chunk_sizes[] = {1, 7, 64, 29};
  std::vector<Key> buf;
  size_t pos = 0;
  size_t chunk = 0;
  while (pos < keys.size()) {
    const size_t len =
        std::min(chunk_sizes[chunk % 4], keys.size() - pos);
    buf.assign(len, 0);
    (*batch)->NextBatch(buf.data(), len);
    for (size_t j = 0; j < len; ++j) {
      ASSERT_EQ(buf[j], (*scalar)->Next());
      ASSERT_EQ(buf[j], keys[pos + j]);
    }
    pos += len;
    ++chunk;
  }
  EXPECT_EQ((*batch)->remaining(), 0u);
  std::remove(path.c_str());
}

TEST(TraceDeathTest, TraceNextBatchPastEndChecks) {
  std::string path = testing::TempDir() + "/pkgstream_trace_overrun.bin";
  ASSERT_TRUE(WriteTrace(path, std::vector<Key>{1, 2, 3}).ok());
  auto reader = TraceKeyStream::Open(path);
  ASSERT_TRUE(reader.ok());
  Key buf[4];
  EXPECT_DEATH((*reader)->NextBatch(buf, 4), "past end of trace");
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFileFails) {
  EXPECT_TRUE(TraceKeyStream::Open("/no/such/file.bin").status().IsIOError());
  EXPECT_TRUE(ReadTrace("/no/such/file.bin").status().IsIOError());
}

TEST(TraceTest, CorruptMagicFails) {
  std::string path = testing::TempDir() + "/pkgstream_trace_bad.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTATRACE";
  }
  EXPECT_TRUE(TraceKeyStream::Open(path).status().IsIOError());
  std::remove(path.c_str());
}

TEST(VectorKeyStreamTest, WrapsAround) {
  VectorKeyStream s({10, 20, 30});
  EXPECT_EQ(s.Next(), 10u);
  EXPECT_EQ(s.Next(), 20u);
  EXPECT_EQ(s.Next(), 30u);
  EXPECT_TRUE(s.ExhaustedOnce());
  EXPECT_EQ(s.Next(), 10u);
  EXPECT_EQ(s.KeySpace(), 31u);
}

TEST(WordsTest, StopWordsForHotRanks) {
  EXPECT_EQ(KeyToWord(0), "the");
  EXPECT_EQ(KeyToWord(1), "of");
}

TEST(WordsTest, BijectionOnRange) {
  for (Key k = 0; k < 20000; ++k) {
    Key back = 0;
    ASSERT_TRUE(WordToKey(KeyToWord(k), &back)) << "k=" << k;
    ASSERT_EQ(back, k);
  }
}

TEST(WordsTest, UnknownWordsRejected) {
  Key k;
  EXPECT_FALSE(WordToKey("", &k));
  EXPECT_FALSE(WordToKey("XYZ!", &k));
  EXPECT_FALSE(WordToKey("qqqq1", &k));  // 'q' not in the alphabets
}

}  // namespace
}  // namespace workload
}  // namespace pkgstream
