// Copyright 2026 The pkgstream Authors.
// Parameterized property tests over all eight Table-I dataset presets:
// invariants every synthetic stand-in must satisfy regardless of kind
// (fitted Zipf, log-normal, drifting, R-MAT).

#include <gtest/gtest.h>

#include <string>

#include "stats/frequency.h"
#include "workload/dataset.h"

namespace pkgstream {
namespace workload {
namespace {

class DatasetPropertyTest : public testing::TestWithParam<DatasetId> {
 protected:
  static constexpr double kScale = 0.004;
  static constexpr uint64_t kProbe = 50000;

  const DatasetSpec& spec() const { return GetDataset(GetParam()); }
};

std::string DatasetName(const testing::TestParamInfo<DatasetId>& info) {
  return GetDataset(info.param).symbol;
}

TEST_P(DatasetPropertyTest, StreamBuildsAtAnyScale) {
  for (double scale : {0.001, 0.01, 1.0}) {
    if (spec().paper_messages > 100000000 && scale == 1.0) continue;  // TW
    auto stream = MakeKeyStream(spec(), scale, 1);
    ASSERT_TRUE(stream.ok()) << spec().symbol << " scale " << scale;
    EXPECT_GE((*stream)->KeySpace(), 1u);
  }
}

TEST_P(DatasetPropertyTest, KeysStayWithinKeySpace) {
  auto stream = MakeKeyStream(spec(), kScale, 42);
  ASSERT_TRUE(stream.ok());
  uint64_t space = (*stream)->KeySpace();
  for (uint64_t i = 0; i < kProbe; ++i) {
    ASSERT_LT((*stream)->Next(), space);
  }
}

TEST_P(DatasetPropertyTest, SeedDeterminism) {
  auto a = MakeKeyStream(spec(), kScale, 7);
  auto b = MakeKeyStream(spec(), kScale, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ((*a)->Next(), (*b)->Next()) << "diverged at " << i;
  }
}

TEST_P(DatasetPropertyTest, SeedsProduceDifferentStreams) {
  auto a = MakeKeyStream(spec(), kScale, 1);
  auto b = MakeKeyStream(spec(), kScale, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  int same = 0;
  for (int i = 0; i < 2000; ++i) {
    if ((*a)->Next() == (*b)->Next()) ++same;
  }
  EXPECT_LT(same, 1500) << "streams look identical across seeds";
}

TEST_P(DatasetPropertyTest, HeadProbabilityTracksPaper) {
  auto stream = MakeKeyStream(spec(), kScale, 42);
  ASSERT_TRUE(stream.ok());
  DatasetStats stats = MeasureStream(stream->get(), kProbe);
  // Within 50% relative or 1.5 percentage points absolute: sampling noise
  // at the test's tiny scale (the calibration benches verify tighter).
  double tolerance = std::max(spec().paper_p1 * 0.5, 0.015);
  EXPECT_NEAR(stats.p1, spec().paper_p1, tolerance) << spec().symbol;
}

TEST_P(DatasetPropertyTest, ScalingIsMonotone) {
  uint64_t m_small = ScaledMessages(spec(), 0.001);
  uint64_t m_large = ScaledMessages(spec(), 0.01);
  EXPECT_LE(m_small, m_large);
  uint64_t k_small = ScaledKeys(spec(), 0.001);
  uint64_t k_large = ScaledKeys(spec(), 0.01);
  EXPECT_LE(k_small, k_large);
}

TEST_P(DatasetPropertyTest, SkewIsRealNotUniform) {
  // All eight datasets are skewed: the top key must clearly exceed the
  // mean frequency.
  auto stream = MakeKeyStream(spec(), kScale, 42);
  ASSERT_TRUE(stream.ok());
  stats::FrequencyTable freq;
  for (uint64_t i = 0; i < kProbe; ++i) freq.Add((*stream)->Next());
  double mean = static_cast<double>(freq.total()) /
                static_cast<double>(freq.distinct());
  auto top = freq.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  // CT floors at 100 keys at this scale, where its p1 of 3.3% is only
  // ~3.3x the uniform share — the weakest skew among the presets.
  EXPECT_GT(static_cast<double>(top[0].second), 2.5 * mean) << spec().symbol;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPropertyTest,
                         testing::Values(DatasetId::kWP, DatasetId::kTW,
                                         DatasetId::kCT, DatasetId::kLN1,
                                         DatasetId::kLN2, DatasetId::kLJ,
                                         DatasetId::kSL1, DatasetId::kSL2),
                         DatasetName);

}  // namespace
}  // namespace workload
}  // namespace pkgstream
