// Copyright 2026 The pkgstream Authors.
// Unit tests for the workload generators: alias sampling, Zipf fitting,
// log-normal weights, static distributions, drift.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "stats/frequency.h"
#include "workload/alias_sampler.h"
#include "workload/drift.h"
#include "workload/lognormal.h"
#include "workload/static_distribution.h"
#include "workload/zipf.h"

namespace pkgstream {
namespace workload {
namespace {

TEST(AliasSamplerTest, SingleCategory) {
  AliasSampler s({1.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler s({2.0, 6.0});
  EXPECT_DOUBLE_EQ(s.Probability(0), 0.25);
  EXPECT_DOUBLE_EQ(s.Probability(1), 0.75);
}

TEST(AliasSamplerTest, EmpiricalMatchesWeights) {
  AliasSampler s({1.0, 2.0, 3.0, 4.0});
  Rng rng(42);
  std::vector<uint64_t> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[s.Sample(&rng)];
  for (int i = 0; i < 4; ++i) {
    double expected = (i + 1) / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expected, 0.005);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler s({0.0, 1.0, 0.0});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(s.Sample(&rng), 1u);
}

TEST(AliasSamplerTest, HighlySkewedWeights) {
  AliasSampler s({1e9, 1.0});
  Rng rng(5);
  int minority = 0;
  for (int i = 0; i < 100000; ++i) minority += s.Sample(&rng) == 1 ? 1 : 0;
  EXPECT_LT(minority, 10);
}

TEST(ZipfTest, WeightsAreDecreasing) {
  auto w = ZipfWeights(100, 1.0);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  auto w = ZipfWeights(10, 0.0);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
  EXPECT_DOUBLE_EQ(ZipfHeadProbability(10, 0.0), 0.1);
}

TEST(ZipfTest, HeadProbabilityKnownValue) {
  // K=3, s=1: H = 1 + 1/2 + 1/3 = 11/6, p1 = 6/11.
  EXPECT_NEAR(ZipfHeadProbability(3, 1.0), 6.0 / 11.0, 1e-12);
}

TEST(ZipfTest, FitRecoversTarget) {
  for (double target : {0.0932, 0.0267, 0.0329}) {
    auto s = FitZipfExponent(100000, target);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(ZipfHeadProbability(100000, *s), target, 1e-4);
  }
}

TEST(ZipfTest, FitIsMonotoneInTarget) {
  auto lo = FitZipfExponent(10000, 0.01);
  auto hi = FitZipfExponent(10000, 0.2);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_LT(*lo, *hi);
}

TEST(ZipfTest, FitRejectsOutOfRangeTargets) {
  EXPECT_TRUE(FitZipfExponent(100, 1.5).status().IsOutOfRange());
  EXPECT_TRUE(FitZipfExponent(100, 0.005).status().IsOutOfRange());
  EXPECT_TRUE(FitZipfExponent(1, 0.5).status().IsInvalidArgument());
}

TEST(LogNormalTest, WeightsPositiveAndDeterministic) {
  auto a = LogNormalWeights(1000, 1.789, 2.366, 42);
  auto b = LogNormalWeights(1000, 1.789, 2.366, 42);
  EXPECT_EQ(a, b);
  for (double w : a) EXPECT_GT(w, 0.0);
}

TEST(LogNormalTest, HigherSigmaMoreSkew) {
  auto narrow = LogNormalWeights(10000, 2.0, 0.5, 1);
  auto wide = LogNormalWeights(10000, 2.0, 2.5, 1);
  auto skew = [](const std::vector<double>& w) {
    double total = std::accumulate(w.begin(), w.end(), 0.0);
    double mx = *std::max_element(w.begin(), w.end());
    return mx / total;
  };
  EXPECT_GT(skew(wide), skew(narrow) * 5);
}

TEST(StaticDistributionTest, SortsDescendingAndNormalizes) {
  StaticDistribution d({1.0, 3.0, 2.0}, "test");
  EXPECT_EQ(d.K(), 3u);
  EXPECT_DOUBLE_EQ(d.Probability(0), 0.5);
  EXPECT_DOUBLE_EQ(d.Probability(1), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.Probability(2), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.P1(), 0.5);
}

TEST(StaticDistributionTest, HeadMass) {
  StaticDistribution d({4.0, 3.0, 2.0, 1.0}, "test");
  EXPECT_DOUBLE_EQ(d.HeadMass(2), 0.7);
  EXPECT_DOUBLE_EQ(d.HeadMass(100), 1.0);
}

TEST(StaticDistributionTest, SamplingMatchesProbabilities) {
  auto dist = std::make_shared<StaticDistribution>(
      std::vector<double>{6.0, 3.0, 1.0}, "test");
  Rng rng(11);
  std::vector<uint64_t> counts(3, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[dist->Sample(&rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.1, 0.01);
}

TEST(IidKeyStreamTest, DeterministicReplay) {
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(100, 1.0),
                                                   "zipf");
  IidKeyStream a(dist, 7);
  IidKeyStream b(dist, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.KeySpace(), 100u);
}

TEST(DriftingKeyStreamTest, NoDriftBeforePeriod) {
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(50, 1.2),
                                                   "zipf");
  DriftOptions opt;
  opt.period = 1000;
  DriftingKeyStream stream(dist, opt, 3);
  for (int i = 0; i < 999; ++i) stream.Next();
  EXPECT_EQ(stream.drift_events(), 0u);
  stream.Next();
  stream.Next();
  EXPECT_EQ(stream.drift_events(), 1u);
}

TEST(DriftingKeyStreamTest, DriftChangesHotKeyIdentity) {
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(1000, 2.0),
                                                   "zipf");
  DriftOptions opt;
  opt.period = 100;
  opt.rotate_top = 4;
  DriftingKeyStream stream(dist, opt, 5);
  Key initial_hot = stream.IdentityOfRank(0);
  EXPECT_EQ(initial_hot, 0u);
  for (int i = 0; i < 1000; ++i) stream.Next();
  EXPECT_GE(stream.drift_events(), 9u);
  // After several rotations the hot identity should have moved.
  EXPECT_NE(stream.IdentityOfRank(0), initial_hot);
}

TEST(DriftingKeyStreamTest, KeysStayInSpace) {
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(64, 1.0),
                                                   "zipf");
  DriftOptions opt;
  opt.period = 10;
  DriftingKeyStream stream(dist, opt, 9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(stream.Next(), 64u);
}

TEST(DriftingKeyStreamTest, PermutationStaysBijective) {
  auto dist = std::make_shared<StaticDistribution>(ZipfWeights(100, 1.0),
                                                   "zipf");
  DriftOptions opt;
  opt.period = 50;
  opt.rotate_top = 10;
  DriftingKeyStream stream(dist, opt, 13);
  for (int i = 0; i < 500; ++i) stream.Next();
  std::vector<bool> seen(100, false);
  for (uint64_t r = 0; r < 100; ++r) {
    Key id = stream.IdentityOfRank(r);
    ASSERT_LT(id, 100u);
    EXPECT_FALSE(seen[id]) << "duplicate identity " << id;
    seen[id] = true;
  }
}

// ---------------------------------------------------------------------------
// NextBatch replay contract (key_stream.h): batch consumption must yield
// exactly the sequence repeated Next() calls would, with the stream ending
// in the identical state, for every stream type and any interleaving of
// batch sizes.
// ---------------------------------------------------------------------------

/// Drives `batch` through interleaved NextBatch sizes (1, 7, 64, ragged
/// 29, and one zero-length call) and `scalar` through Next(), comparing
/// element by element; then confirms both streams continue in lockstep.
void ExpectBatchReplaysScalar(KeyStream* scalar, KeyStream* batch,
                              size_t total) {
  const size_t chunk_sizes[] = {1, 7, 64, 29};
  std::vector<Key> buf;
  size_t pos = 0;
  size_t chunk = 0;
  while (pos < total) {
    if (chunk % 5 == 4) {
      buf.clear();
      batch->NextBatch(buf.data(), 0);  // zero-length: must be a no-op
      ++chunk;
      continue;
    }
    const size_t len = std::min(chunk_sizes[chunk % 4], total - pos);
    buf.assign(len, 0);
    batch->NextBatch(buf.data(), len);
    for (size_t j = 0; j < len; ++j) {
      ASSERT_EQ(buf[j], scalar->Next())
          << "diverged at key " << pos + j << " (chunk " << chunk << ")";
    }
    pos += len;
    ++chunk;
  }
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(batch->Next(), scalar->Next())
        << "post-batch stream state diverged at " << i;
  }
}

TEST(NextBatchTest, IidKeyStreamReplaysScalar) {
  auto dist = std::make_shared<const StaticDistribution>(
      ZipfWeights(1000, 1.2), "zipf");
  IidKeyStream scalar(dist, 99);
  IidKeyStream batch(dist, 99);
  ExpectBatchReplaysScalar(&scalar, &batch, 5000);
}

TEST(NextBatchTest, DriftingKeyStreamReplaysScalarAcrossDriftEvents) {
  auto dist = std::make_shared<const StaticDistribution>(
      ZipfWeights(500, 1.0), "zipf");
  DriftOptions options;
  options.period = 700;  // several drift events inside the run
  options.rotate_top = 8;
  DriftingKeyStream scalar(dist, options, 7);
  DriftingKeyStream batch(dist, options, 7);
  ExpectBatchReplaysScalar(&scalar, &batch, 5000);
  EXPECT_GT(batch.drift_events(), 0u);
  EXPECT_EQ(batch.drift_events(), scalar.drift_events());
}

}  // namespace
}  // namespace workload
}  // namespace pkgstream
