// Copyright 2026 The pkgstream Authors.
// bench_check: the reproduction gate's CLI. Verifies a fresh bench report
// against its committed golden baseline:
//
//   ./build/bench_table2_imbalance --quick --json=/tmp/t2.json
//   ./build/bench_check --report=/tmp/t2.json
//       --baseline=bench/baselines/bench_table2_imbalance.json
//
// Exit codes: 0 all checks hold; 1 a check failed (shape regression or
// metric drift); 2 usage / unreadable input. `ctest -L repro` wires one
// bench → report → check pipeline per paper figure/table.
//
// --update-captured re-captures the baseline: it replaces the baseline's
// "captured" report with the fresh one (keeping the declared invariants and
// tolerance untouched), runs the checks against the updated document, and
// rewrites the file in canonical form only when every check holds — a
// re-capture that breaks a shape invariant fails and leaves the committed
// baseline untouched.

#include <filesystem>
#include <iostream>

#include "common/flags.h"
#include "tools/bench_check_lib.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    return 2;
  }
  const std::string report_path = flags.GetString("report", "");
  const std::string baseline_path = flags.GetString("baseline", "");
  const bool quiet = flags.GetBool("quiet", false);
  const bool update_captured = flags.GetBool("update-captured", false);
  repro::CheckOptions options;
  // For sanitizer builds: instrumentation skews relative throughput, so
  // wall-clock ratio invariants are skipped (reported as SKIP lines) while
  // every deterministic check still runs against the untouched baselines.
  options.skip_host_invariants = flags.GetBool("skip-host-invariants", false);
  if (update_captured && options.skip_host_invariants) {
    std::cerr << "--update-captured with --skip-host-invariants would bless "
                 "a capture without its timing checks; run them separately\n";
    return 2;
  }
  if (report_path.empty() || baseline_path.empty()) {
    std::cerr << "usage: bench_check --report=PATH --baseline=PATH "
                 "[--baseline-dir=DIR] [--quiet] [--update-captured] "
                 "[--skip-host-invariants]\n";
    return 2;
  }
  // Cross-bench invariants ("<bench>::<metric>") resolve sibling baselines
  // from --baseline-dir; by default, from wherever the baseline itself
  // lives — which for the committed gate is bench/baselines/. An explicit
  // --baseline-dir that does not exist is a usage error (exit 2) up front:
  // otherwise every cross-bench invariant would go red one by one, which
  // reads like mass metric drift instead of one bad flag.
  std::string baseline_dir = flags.GetString("baseline-dir", "");
  if (!baseline_dir.empty() &&
      !std::filesystem::is_directory(baseline_dir)) {
    std::cerr << "--baseline-dir='" << baseline_dir
              << "' is not a directory (expected the committed "
                 "bench/baselines/); no checks were run\n";
    return 2;
  }
  if (baseline_dir.empty()) {
    const auto parent =
        std::filesystem::path(baseline_path).parent_path().string();
    baseline_dir = parent.empty() ? std::string(".") : parent;
  }

  auto report = ReadJsonFile(report_path);
  if (!report.ok()) {
    std::cerr << "cannot load report: " << report.status() << "\n";
    return 2;
  }
  auto baseline = ReadJsonFile(baseline_path);
  if (!baseline.ok()) {
    std::cerr << "cannot load baseline: " << baseline.status() << "\n";
    return 2;
  }

  if (update_captured) {
    // Refuse to touch the file when the fresh report is not the same
    // experiment the baseline holds — a mixed-up --baseline path (bench
    // mismatch) or a run at the wrong scale/seed (e.g. a forgotten
    // --quick). The write below replaces the committed capture, and the
    // post-update checks compare against the new capture, so they cannot
    // catch this themselves.
    const std::string report_bench = report->StringOr("bench", "");
    const std::string baseline_bench = baseline->StringOr("bench", "");
    if (report_bench.empty() || report_bench != baseline_bench) {
      std::cerr << "refusing --update-captured: report is for '"
                << report_bench << "' but baseline is for '" << baseline_bench
                << "'\n";
      return 2;
    }
    const JsonValue* old_captured = baseline->FindObject("captured");
    if (old_captured != nullptr && old_captured->Find("scale") != nullptr) {
      const std::string old_scale = old_captured->StringOr("scale", "?");
      const std::string new_scale = report->StringOr("scale", "?");
      const double old_seed = old_captured->NumberOr("seed", -1);
      const double new_seed = report->NumberOr("seed", -2);
      if (old_scale != new_scale || old_seed != new_seed) {
        std::cerr << "refusing --update-captured: baseline was captured at "
                     "scale '"
                  << old_scale << "' seed " << FormatJsonNumber(old_seed)
                  << " but the report ran at scale '" << new_scale
                  << "' seed " << FormatJsonNumber(new_seed)
                  << " (re-run the bench with matching flags, or edit the "
                     "baseline's captured scale/seed to intentionally move "
                     "the capture point)\n";
        return 2;
      }
    }
    baseline->Set("captured", *report);
  }

  repro::CheckOutcome outcome =
      repro::CheckReport(*report, *baseline, baseline_dir, options);

  // The re-capture lands on disk only after every check held against the
  // updated document — a capture that violates a declared shape invariant
  // must not replace the committed one.
  if (update_captured && outcome.ok()) {
    Status w = WriteJsonFile(*baseline, baseline_path);
    if (!w.ok()) {
      std::cerr << "cannot rewrite baseline: " << w << "\n";
      return 2;
    }
    std::cout << "(re-captured " << baseline_path << " from " << report_path
              << ")\n";
  }
  if (update_captured && !outcome.ok()) {
    std::cerr << "baseline NOT rewritten: the re-capture fails the declared "
                 "checks\n";
  }
  if (!quiet) {
    for (const std::string& line : outcome.passed) {
      std::cout << "PASS  " << line << "\n";
    }
  }
  for (const std::string& line : outcome.failures) {
    std::cerr << "FAIL  " << line << "\n";
  }
  if (!outcome.ok()) {
    std::cerr << outcome.failures.size() << " check(s) failed for "
              << report_path << " vs " << baseline_path << "\n";
    return 1;
  }
  std::cout << "OK: " << outcome.passed.size() << " check(s) hold";
  if (outcome.skipped > 0) {
    std::cout << " (" << outcome.skipped << " host-timing skipped)";
  }
  std::cout << " (" << report_path << " vs " << baseline_path << ")\n";
  return 0;
}
