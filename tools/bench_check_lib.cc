// Copyright 2026 The pkgstream Authors.

#include "tools/bench_check_lib.h"

#include <cmath>
#include <filesystem>
#include <map>
#include <sstream>

#include "bench/report.h"

namespace pkgstream {
namespace repro {

namespace {

double RelDiff(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  if (scale == 0.0) return 0.0;
  return std::fabs(a - b) / scale;
}

/// Looks up `key` in the report's metrics, then host_metrics.
bool LookupMetric(const JsonValue& report, const std::string& key,
                  double* out) {
  for (const char* section : {"metrics", "host_metrics"}) {
    const JsonValue* map = report.FindObject(section);
    if (map == nullptr) continue;
    const JsonValue* v = map->Find(key);
    if (v != nullptr && v->is_number()) {
      *out = v->number();
      return true;
    }
  }
  return false;
}

class Checker {
 public:
  Checker(const JsonValue& report, const JsonValue& baseline,
          const std::string& baseline_dir, const CheckOptions& options)
      : report_(report),
        baseline_(baseline),
        baseline_dir_(baseline_dir),
        options_(options) {}

  CheckOutcome Run() {
    CheckDocuments();
    if (!outcome_.failures.empty()) return std::move(outcome_);
    CheckMetricAgreement();
    CheckInvariants();
    return std::move(outcome_);
  }

 private:
  void Fail(const std::string& line) { outcome_.failures.push_back(line); }
  void Pass(const std::string& line) { outcome_.passed.push_back(line); }

  void CheckDocuments() {
    if (!report_.is_object() || !baseline_.is_object()) {
      Fail("report and baseline must be JSON objects");
      return;
    }
    const double report_schema = report_.NumberOr("schema_version", -1);
    const double baseline_schema = baseline_.NumberOr("schema_version", -1);
    if (report_schema != bench::kReportSchemaVersion ||
        baseline_schema != bench::kReportSchemaVersion) {
      Fail("schema_version mismatch (report " +
           FormatJsonNumber(report_schema) + ", baseline " +
           FormatJsonNumber(baseline_schema) + ", expected " +
           std::to_string(bench::kReportSchemaVersion) + ")");
      return;
    }
    const std::string report_bench = report_.StringOr("bench", "");
    const std::string baseline_bench = baseline_.StringOr("bench", "");
    if (report_bench.empty() || report_bench != baseline_bench) {
      Fail("bench name mismatch: report '" + report_bench + "' vs baseline '" +
           baseline_bench + "'");
      return;
    }
    const JsonValue* captured = baseline_.FindObject("captured");
    if (captured == nullptr) {
      Fail("baseline has no 'captured' report");
      return;
    }
    // The captured run and the fresh run must be the same experiment:
    // comparing a --quick report against a --full capture (or different
    // seeds) would diff unrelated numbers.
    const std::string report_scale = report_.StringOr("scale", "?");
    const std::string captured_scale = captured->StringOr("scale", "?");
    if (report_scale != captured_scale) {
      Fail("scale mismatch: report ran at '" + report_scale +
           "' but the baseline was captured at '" + captured_scale + "'");
    }
    const double report_seed = report_.NumberOr("seed", -1);
    const double captured_seed = captured->NumberOr("seed", -2);
    if (report_seed != captured_seed) {
      Fail("seed mismatch: report " + FormatJsonNumber(report_seed) +
           " vs captured " + FormatJsonNumber(captured_seed));
    }
  }

  void CheckMetricAgreement() {
    const double tolerance = baseline_.NumberOr("tolerance",
                                                kDefaultTolerance);
    const JsonValue* captured = baseline_.FindObject("captured");
    const JsonValue* captured_metrics =
        captured != nullptr ? captured->FindObject("metrics") : nullptr;
    const JsonValue* report_metrics = report_.FindObject("metrics");
    if (captured_metrics == nullptr || report_metrics == nullptr) {
      Fail("missing 'metrics' section in report or captured baseline");
      return;
    }
    size_t compared = 0;
    for (const auto& [key, value] : captured_metrics->members()) {
      if (!value.is_number()) {
        Fail("captured metric '" + key + "' is not a number");
        continue;
      }
      const JsonValue* fresh = report_metrics->Find(key);
      if (fresh == nullptr || !fresh->is_number()) {
        Fail("metric '" + key + "' missing from the fresh report");
        continue;
      }
      const double diff = RelDiff(fresh->number(), value.number());
      if (diff > tolerance) {
        std::ostringstream os;
        os << "metric '" << key << "' drifted: fresh "
           << FormatJsonNumber(fresh->number()) << " vs captured "
           << FormatJsonNumber(value.number()) << " (rel diff "
           << FormatJsonNumber(diff) << " > tolerance "
           << FormatJsonNumber(tolerance) << ")";
        Fail(os.str());
        continue;
      }
      ++compared;
    }
    // New metrics are schema drift too: the baseline no longer covers the
    // report. Re-capture to bless them.
    for (const auto& [key, value] : report_metrics->members()) {
      (void)value;
      if (captured_metrics->Find(key) == nullptr) {
        Fail("metric '" + key +
             "' is not in the baseline (re-capture to bless it)");
      }
    }
    Pass("metric agreement: " + std::to_string(compared) +
         " metrics within rel tolerance " + FormatJsonNumber(tolerance));
  }

  /// Resolves a metric key against the fresh report, or — for keys of the
  /// form "<bench>::<metric>" — against the committed captured metrics of
  /// the named sibling baseline (deterministic section only; see the
  /// header comment). Emits a failure line and returns false when the key
  /// cannot be resolved.
  bool LookupOperand(const std::string& key, const std::string& name,
                     double* out) {
    const size_t sep = key.find("::");
    if (sep == std::string::npos) {
      if (!LookupMetric(report_, key, out)) {
        Fail("invariant '" + name + "': metric '" + key +
             "' not found in the report");
        return false;
      }
      return true;
    }
    const std::string bench = key.substr(0, sep);
    const std::string metric = key.substr(sep + 2);
    if (bench.empty() || metric.empty()) {
      Fail("invariant '" + name + "': malformed cross-bench key '" + key +
           "'");
      return false;
    }
    if (baseline_dir_.empty()) {
      Fail("invariant '" + name + "': cross-bench reference '" + key +
           "' but no baseline directory was provided");
      return false;
    }
    const JsonValue* sibling = LoadSibling(bench, name);
    if (sibling == nullptr) return false;
    const JsonValue* captured = sibling->FindObject("captured");
    const JsonValue* metrics =
        captured != nullptr ? captured->FindObject("metrics") : nullptr;
    const JsonValue* v = metrics != nullptr ? metrics->Find(metric) : nullptr;
    if (v == nullptr || !v->is_number()) {
      Fail("invariant '" + name + "': metric '" + metric +
           "' not found in the captured metrics of baseline '" + bench +
           "'");
      return false;
    }
    *out = v->number();
    return true;
  }

  /// Loads (and memoizes) the committed baseline of a sibling bench.
  const JsonValue* LoadSibling(const std::string& bench,
                               const std::string& name) {
    auto it = siblings_.find(bench);
    if (it == siblings_.end()) {
      const std::string path = baseline_dir_ + "/" + bench + ".json";
      // Distinguish the two fail-closed cases from a genuine metric
      // mismatch: a missing directory / file is a gate-configuration
      // problem (wrong --baseline-dir, baseline never committed), and the
      // message must say so — "cannot load" reads like data drift.
      if (!std::filesystem::exists(path)) {
        const bool dir_exists = std::filesystem::is_directory(baseline_dir_);
        Fail("invariant '" + name + "': sibling baseline file '" + path +
             "' does not exist" +
             (dir_exists
                  ? std::string(" (missing gate input, not a metric "
                                "mismatch: commit the baseline or fix the "
                                "cross-bench reference)")
                  : std::string(" — the baseline directory '") +
                        baseline_dir_ +
                        "' itself is missing (missing gate input, not a "
                        "metric mismatch: point --baseline-dir at the "
                        "committed bench/baselines/)"));
        siblings_.emplace(bench, JsonValue());  // memoize the miss
        return nullptr;
      }
      auto loaded = ReadJsonFile(path);
      if (!loaded.ok()) {
        Fail("invariant '" + name + "': cannot parse sibling baseline '" +
             path + "': " + loaded.status().ToString());
        siblings_.emplace(bench, JsonValue());  // memoize the miss
        return nullptr;
      }
      // The filename is just a lookup key; the document must identify
      // itself as the referenced bench, or a misnamed/miscopied baseline
      // would silently feed another bench's metrics into the invariant.
      if (loaded->StringOr("bench", "") != bench) {
        Fail("invariant '" + name + "': sibling baseline file '" + bench +
             ".json' declares bench '" + loaded->StringOr("bench", "?") +
             "'");
        siblings_.emplace(bench, JsonValue());  // memoize the miss
        return nullptr;
      }
      it = siblings_.emplace(bench, std::move(*loaded)).first;
    }
    if (!it->second.is_object()) {
      // A memoized earlier miss: the failure line was already emitted once;
      // repeat a short form so every referencing invariant is accounted.
      Fail("invariant '" + name + "': sibling baseline '" + bench +
           "' is unavailable");
      return nullptr;
    }
    return &it->second;
  }

  /// True when `key` names a fresh-report operand that lives only in the
  /// wall-clock "host_metrics" section. Cross-bench ("<bench>::<metric>")
  /// operands never do — they read a sibling's deterministic capture.
  bool IsHostTimingKey(const std::string& key) const {
    if (key.find("::") != std::string::npos) return false;
    const JsonValue* metrics = report_.FindObject("metrics");
    if (metrics != nullptr && metrics->Find(key) != nullptr) return false;
    const JsonValue* host = report_.FindObject("host_metrics");
    return host != nullptr && host->Find(key) != nullptr;
  }

  /// Scans every operand field an invariant can carry; sets `*host_key` to
  /// the first host-timing one found.
  bool HasHostTimingOperand(const JsonValue& inv,
                            std::string* host_key) const {
    for (const char* field : {"left", "left_div", "right", "right_div"}) {
      const JsonValue* v = inv.Find(field);
      if (v != nullptr && v->is_string() &&
          IsHostTimingKey(v->string_value())) {
        *host_key = v->string_value();
        return true;
      }
    }
    const JsonValue* keys = inv.Find("keys");
    if (keys != nullptr && keys->is_array()) {
      for (size_t i = 0; i < keys->size(); ++i) {
        if (keys->at(i).is_string() &&
            IsHostTimingKey(keys->at(i).string_value())) {
          *host_key = keys->at(i).string_value();
          return true;
        }
      }
    }
    return false;
  }

  bool Resolve(const JsonValue& inv, const std::string& key_field,
               const std::string& const_field, const std::string& div_field,
               const std::string& name, double* out) {
    double value = 0.0;
    const JsonValue* key = inv.Find(key_field);
    if (key != nullptr && key->is_string()) {
      if (!LookupOperand(key->string_value(), name, &value)) return false;
    } else if (const JsonValue* c = inv.Find(const_field);
               !const_field.empty() && c != nullptr && c->is_number()) {
      value = c->number();
    } else {
      Fail("invariant '" + name + "': missing operand '" + key_field + "'");
      return false;
    }
    const JsonValue* div = inv.Find(div_field);
    if (div != nullptr && div->is_string()) {
      double d = 0.0;
      if (!LookupOperand(div->string_value(), name, &d)) return false;
      if (d == 0.0) {
        Fail("invariant '" + name + "': divisor '" + div->string_value() +
             "' is zero");
        return false;
      }
      value /= d;
    }
    *out = value;
    return true;
  }

  void CheckComparison(const JsonValue& inv, const std::string& name,
                       const std::string& type) {
    double left = 0.0;
    double right = 0.0;
    if (!Resolve(inv, "left", "", "left_div", name, &left)) return;
    if (!Resolve(inv, "right", "right_const", "right_div", name, &right)) {
      return;
    }
    const double factor = inv.NumberOr("factor", 1.0);
    const double scaled = factor * right;
    bool holds = false;
    std::string op;
    if (type == "le") {
      holds = left <= scaled;
      op = "<=";
    } else if (type == "ge") {
      holds = left >= scaled;
      op = ">=";
    } else {  // eq
      const double rel_tol = inv.NumberOr("rel_tol", kDefaultTolerance);
      holds = RelDiff(left, scaled) <= rel_tol;
      op = "~=";
    }
    std::ostringstream os;
    os << "invariant '" << name << "': " << FormatJsonNumber(left) << " "
       << op << " " << FormatJsonNumber(factor) << " * "
       << FormatJsonNumber(right);
    if (holds) {
      Pass(os.str());
    } else {
      os << "  VIOLATED";
      Fail(os.str());
    }
  }

  void CheckMonotone(const JsonValue& inv, const std::string& name,
                     bool nondecreasing) {
    const JsonValue* keys = inv.Find("keys");
    if (keys == nullptr || !keys->is_array() || keys->size() < 2) {
      Fail("invariant '" + name + "': 'keys' must list >= 2 metrics");
      return;
    }
    const double slack = inv.NumberOr("slack", 1.0);
    if (slack < 1.0) {
      Fail("invariant '" + name + "': slack must be >= 1");
      return;
    }
    double prev = 0.0;
    std::string prev_key;
    for (size_t i = 0; i < keys->size(); ++i) {
      if (!keys->at(i).is_string()) {
        Fail("invariant '" + name + "': 'keys' must be strings");
        return;
      }
      const std::string& key = keys->at(i).string_value();
      double value = 0.0;
      if (!LookupOperand(key, name, &value)) return;
      if (i > 0) {
        // Slack loosens the bound by a fraction of the previous value's
        // magnitude, so it loosens for negative values too (prev * slack
        // would tighten there).
        const double give = (slack - 1.0) * std::fabs(prev);
        const bool holds = nondecreasing ? value >= prev - give
                                         : value <= prev + give;
        if (!holds) {
          std::ostringstream os;
          os << "invariant '" << name << "': not monotone "
             << (nondecreasing ? "nondecreasing" : "nonincreasing")
             << " at '" << key << "': " << FormatJsonNumber(value)
             << " after '" << prev_key << "' = " << FormatJsonNumber(prev)
             << " (slack " << FormatJsonNumber(slack) << ")  VIOLATED";
          Fail(os.str());
          return;
        }
      }
      prev = value;
      prev_key = key;
    }
    Pass("invariant '" + name + "': monotone over " +
         std::to_string(keys->size()) + " points");
  }

  void CheckInvariants() {
    const JsonValue* invariants = baseline_.Find("invariants");
    if (invariants == nullptr || !invariants->is_array() ||
        invariants->size() == 0) {
      Fail("baseline declares no invariants — a reproduction baseline must "
           "state the paper shape it enforces");
      return;
    }
    for (size_t i = 0; i < invariants->size(); ++i) {
      const JsonValue& inv = invariants->at(i);
      if (!inv.is_object()) {
        Fail("invariant #" + std::to_string(i) + " is not an object");
        continue;
      }
      const std::string name =
          inv.StringOr("name", "#" + std::to_string(i));
      const std::string type = inv.StringOr("type", "");
      if (options_.skip_host_invariants) {
        std::string host_key;
        if (HasHostTimingOperand(inv, &host_key)) {
          ++outcome_.skipped;
          Pass("invariant '" + name + "': SKIPPED (operand '" + host_key +
               "' is a host_metrics wall-clock; timing claims are not "
               "checked in this run)");
          continue;
        }
      }
      if (type == "le" || type == "ge" || type == "eq") {
        CheckComparison(inv, name, type);
      } else if (type == "monotone_nondecreasing") {
        CheckMonotone(inv, name, /*nondecreasing=*/true);
      } else if (type == "monotone_nonincreasing") {
        CheckMonotone(inv, name, /*nondecreasing=*/false);
      } else {
        Fail("invariant '" + name + "': unknown type '" + type + "'");
      }
    }
  }

  const JsonValue& report_;
  const JsonValue& baseline_;
  const std::string baseline_dir_;
  const CheckOptions options_;
  std::map<std::string, JsonValue> siblings_;  // memoized cross-bench loads
  CheckOutcome outcome_;
};

}  // namespace

CheckOutcome CheckReport(const JsonValue& report, const JsonValue& baseline,
                         const std::string& baseline_dir,
                         const CheckOptions& options) {
  return Checker(report, baseline, baseline_dir, options).Run();
}

}  // namespace repro
}  // namespace pkgstream
