// Copyright 2026 The pkgstream Authors.
// The reproduction gate's checker: diffs a fresh bench report (bench/report.h
// JSON) against a committed golden baseline (bench/baselines/<bench>.json).
//
// A baseline never pins absolute host-dependent numbers. It checks two
// things:
//  1. declared invariants — the paper's *shape* claims (ordering, ratios,
//     monotonicity with tolerances), evaluated on the fresh report: these
//     are what "reproduces the figure" means, host-independently;
//  2. metric agreement — the baseline's captured "metrics" section (which is
//     deterministic given seed + scale) must match the fresh report within a
//     tight relative tolerance, so any silent change in simulation results
//     fails even when the shape survives. Wall-clock "host_metrics" are
//     exempt; invariants may still relate them *within* one report.
//
// Baseline document schema (see docs/BENCHMARKS.md "Baselines"):
//   {
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "tolerance": 1e-6,            // relative, for metric agreement
//     "captured": { <a full report document> },
//     "invariants": [ <invariant>, ... ]   // must be non-empty
//   }
//
// Invariant forms ("factor" defaults to 1, "slack" to 1; operands name
// metric keys, resolved in metrics then host_metrics; "*_div" divides the
// operand, enabling ratio-of-ratio claims like "KG declines faster"):
//   {"name": .., "type": "le"|"ge"|"eq",
//    "left": KEY, ["left_div": KEY,]
//    "right": KEY | "right_const": NUMBER, ["right_div": KEY,]
//    ["factor": F,] ["rel_tol": T]}        // eq only: relative tolerance
//   {"name": .., "type": "monotone_nondecreasing"|"monotone_nonincreasing",
//    "keys": [KEY, ...], ["slack": S]}     // S >= 1 loosens each step
// Semantics: le: left <= F*right; ge: left >= F*right;
// eq: |left - F*right| <= T*max(|left|,|F*right|);
// nondecreasing with slack S: v[i+1] >= v[i] - (S-1)*|v[i]| — the slack
// loosens by a fraction of the previous magnitude, sign-safe
// (nonincreasing mirrored: v[i+1] <= v[i] + (S-1)*|v[i]|).
//
// Cross-bench operands: a key of the form "<bench>::<metric>" resolves
// <metric> from the *committed baseline* of <bench> — specifically its
// captured report's deterministic "metrics" section (never host_metrics:
// wall clocks from another capture are a different host and a different
// day). Sibling baselines are loaded from the directory passed to
// CheckReport (the CLI defaults it to the --baseline file's directory), so
// one bench's gate can pin consistency claims that span two figures — e.g.
// Figure 2's hashing-vs-PKG imbalance ratio against Table II's. A
// cross-bench reference with no baseline directory, an unloadable sibling
// file, or an unknown metric is a failure, not an error.

#ifndef PKGSTREAM_TOOLS_BENCH_CHECK_LIB_H_
#define PKGSTREAM_TOOLS_BENCH_CHECK_LIB_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace pkgstream {
namespace repro {

/// \brief Relative tolerance used for metric agreement when the baseline
/// does not declare one. Tight: report metrics are deterministic; only
/// cross-compiler floating-point drift should pass.
inline constexpr double kDefaultTolerance = 1e-6;

/// \brief Outcome of one report-vs-baseline check.
struct CheckOutcome {
  std::vector<std::string> passed;    ///< one line per passing check
  std::vector<std::string> failures;  ///< one line per failing check
  size_t skipped = 0;                 ///< host-timing invariants skipped
  bool ok() const { return failures.empty(); }
};

/// \brief Evaluation options for CheckReport.
struct CheckOptions {
  /// Skip invariants with an operand that resolves from the report's
  /// "host_metrics" (wall-clock) section instead of the deterministic
  /// "metrics" section. For sanitizer builds (ASan/UBSan/TSan), whose
  /// instrumentation skews *relative* throughput between code paths:
  /// timing-ratio claims are meaningless there, while every deterministic
  /// check (metric agreement, shape invariants over "metrics") still runs
  /// and the committed baselines stay untouched. Skipped invariants are
  /// reported as explicit SKIP lines and counted in CheckOutcome::skipped,
  /// never silently dropped.
  bool skip_host_invariants = false;
};

/// \brief Runs every check of `baseline` against `report`. Malformed
/// documents (wrong bench, missing invariants, unknown invariant types,
/// missing metric keys) are failures, not errors: the gate must go red, not
/// crash, when a baseline rots.
///
/// `baseline_dir` is where "<bench>::<metric>" cross-bench operands load
/// sibling baselines from ("<baseline_dir>/<bench>.json"); when empty, any
/// cross-bench reference fails with a message saying the directory is
/// missing.
CheckOutcome CheckReport(const JsonValue& report, const JsonValue& baseline,
                         const std::string& baseline_dir = "",
                         const CheckOptions& options = CheckOptions());

}  // namespace repro
}  // namespace pkgstream

#endif  // PKGSTREAM_TOOLS_BENCH_CHECK_LIB_H_
