// Copyright 2026 The pkgstream Authors.
// pkgstream_lint: the project-invariant lint CLI (rules and rationale in
// pkgstream_lint_lib.h, policy in docs/ANALYSIS.md).
//
//   ./build/pkgstream_lint --root=.            # human-readable findings
//   ./build/pkgstream_lint --root=. --json     # machine-readable report
//   ./build/pkgstream_lint --list-rules
//
// Exit codes: 0 tree is clean; 1 findings; 2 usage / unlintable tree.
// On a clean run the last line is "lint-clean: <files> files, <rules>
// rules, 0 findings" — CI greps it, mirroring the repro gate's summary
// lines.

#include <iostream>

#include "common/flags.h"
#include "tools/pkgstream_lint_lib.h"

int main(int argc, char** argv) {
  using namespace pkgstream;
  Flags flags;
  Status s = Flags::Parse(argc, argv, &flags);
  if (!s.ok()) {
    std::cerr << "flag error: " << s << "\n";
    return 2;
  }
  if (flags.GetBool("list-rules", false)) {
    for (const lint::RuleInfo& rule : lint::Rules()) {
      std::cout << rule.name << "\n    " << rule.summary << "\n";
    }
    return 0;
  }
  const std::string root = flags.GetString("root", "");
  const bool as_json = flags.GetBool("json", false);
  if (root.empty()) {
    std::cerr << "usage: pkgstream_lint --root=REPO_DIR [--json] "
                 "[--list-rules]\n";
    return 2;
  }

  auto report = lint::RunLint(root);
  if (!report.ok()) {
    std::cerr << "lint error: " << report.status() << "\n";
    return 2;
  }

  if (as_json) {
    lint::ReportToJson(*report).Write(std::cout);
  } else {
    for (const lint::Finding& f : report->findings) {
      std::cerr << f.file;
      if (f.line > 0) std::cerr << ":" << f.line;
      std::cerr << ": [" << f.rule << "] " << f.message << "\n";
    }
    if (report->findings.empty()) {
      std::cout << "lint-clean: " << report->files_scanned << " files, "
                << lint::Rules().size() << " rules, 0 findings\n";
    } else {
      std::cerr << "lint: " << report->findings.size() << " finding(s) in "
                << report->files_scanned << " scanned files\n";
    }
  }
  return report->findings.empty() ? 0 : 1;
}
