// Copyright 2026 The pkgstream Authors.
// Implementation of the project lint (see pkgstream_lint_lib.h for the
// rule catalog). Everything here is a line/token scan over scrubbed
// source text — no real C++ parsing — which is exactly enough for the
// invariants being enforced: they are all "token X may only appear in
// place Y" or "name X must appear in file Y" contracts, chosen so that a
// cheap scanner checks them with no false positives once comments and
// string literals are stripped.

#include "tools/pkgstream_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace pkgstream {
namespace lint {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Rule registry
// ---------------------------------------------------------------------------

constexpr RuleInfo kRules[] = {
    {"route-batch-clone",
     "a Partitioner subclass overriding RouteBatch must override Clone()"},
    {"technique-matrix",
     "every Technique enumerator must appear in the RouteBatch equivalence "
     "matrix (tests/partition_route_batch_test.cc)"},
    {"isa-confinement",
     "vector-ISA tokens are confined to the designated -mavx2/-mavx512 TUs"},
    {"hotpath-tokens",
     "no heap/locking/libc-rand tokens in routing hot-path files outside "
     "annotated allow sites"},
    {"baseline-schema",
     "every bench/baselines/*.json parses and matches the bench_check "
     "baseline schema"},
    {"baseline-manifest",
     "every committed baseline is referenced by the CMake repro pipeline "
     "and the repro_gate_test manifest, and vice versa"},
};

// The TUs CMake compiles with vector-ISA flags (plus the inline header
// shared between them). Must stay in sync with the set_source_files_
// properties calls in CMakeLists.txt.
const char* const kIsaAllowedFiles[] = {
    "src/common/hash_avx2.cc",
    "src/common/hash_avx512.cc",
    "src/common/hash_simd_avx2_inl.h",
};

// Vector-ISA tokens whose presence means "this TU must be compiled with
// -mavx*": the intrinsics header plus intrinsic/vector-type prefixes.
const char* const kIsaTokens[] = {
    "immintrin.h", "_mm256_", "_mm512_", "__m256", "__m512",
};

// Identifier tokens banned from the hot-path files: heap allocation,
// locking, and libc randomness. Matched on identifier boundaries in
// scrubbed text; cold-path exceptions carry a lint:allow marker.
const char* const kHotpathTokens[] = {
    "new",        "malloc",      "calloc",      "realloc",
    "rand",       "srand",       "mutex",       "lock_guard",
    "unique_lock", "make_unique", "make_shared", "condition_variable",
};

bool IsHotpathFile(const std::string& rel) {
  if (rel == "src/partition/pkg.cc") return true;
  if (rel == "src/engine/spsc_ring.h") return true;
  // src/common/hash*.cc — the scalar reference and every SIMD kernel TU.
  if (rel.rfind("src/common/hash", 0) == 0 &&
      rel.size() >= 3 && rel.compare(rel.size() - 3, 3, ".cc") == 0) {
    return true;
  }
  return false;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

size_t LineOfOffset(const std::string& text, size_t offset) {
  return static_cast<size_t>(
             std::count(text.begin(), text.begin() + offset, '\n')) +
         1;
}

/// Whole-identifier search: `token` at `pos` with no identifier characters
/// adjacent on either side.
bool IsWholeToken(const std::string& text, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + len;
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

struct SourceFile {
  std::string rel;       ///< path relative to the linted root
  std::string raw;       ///< file bytes
  std::string scrubbed;  ///< comments + strings blanked
  std::string no_strings;  ///< strings blanked, comments kept (markers)
};

Result<std::string> ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot read " + path.string());
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One-pass comment/string scrubber. `keep_comments` keeps comment text
/// (used for allow-marker detection, which must live in comments but must
/// not fire on string literals that merely mention the marker syntax).
std::string Scrub(const std::string& text, bool keep_comments) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar
  } state = State::kCode;
  char prev_code_char = '\0';  // last code character (digit-separator guard)
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        // Raw string literal R"delim(...)delim": blank the whole body
        // here (it can contain quotes, comment markers, anything).
        if (c == 'R' && next == '"' &&
            (i == 0 || !IsIdentChar(out[i - 1]))) {
          const size_t open = out.find('(', i + 2);
          if (open != std::string::npos && open - (i + 2) <= 16) {
            const std::string delim = out.substr(i + 2, open - (i + 2));
            const size_t close = out.find(")" + delim + "\"", open + 1);
            const size_t end =
                close == std::string::npos ? out.size()
                                           : close + delim.size() + 2;
            for (size_t j = i; j < end; ++j) {
              if (out[j] != '\n') out[j] = ' ';
            }
            i = end - 1;
            prev_code_char = '"';
            break;
          }
        }
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          if (!keep_comments) out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          if (!keep_comments) out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;  // the quotes themselves stay
        } else if (c == '\'' && IsIdentChar(prev_code_char)) {
          // C++14 digit separator (1'000'000) or a prefixed char literal
          // (u8'x'): stay in code. The separator must not open a literal,
          // and a leaked one-char literal body can never match a banned
          // token (all are >= 3 chars).
        } else if (c == '\'') {
          state = State::kChar;
        }
        if (state == State::kCode && !std::isspace(static_cast<unsigned char>(c))) {
          prev_code_char = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else if (!keep_comments) {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (!keep_comments) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          state = State::kCode;
        } else if (c != '\n' && !keep_comments) {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          prev_code_char = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          prev_code_char = '\'';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

class Linter {
 public:
  explicit Linter(std::string root) : root_(std::move(root)) {}

  Result<Report> Run() {
    // Fail closed on a wrong --root: a lint run over an empty or unrelated
    // directory must be an error, never a clean pass.
    if (!fs::is_directory(fs::path(root_) / "src") ||
        !fs::is_directory(fs::path(root_) / "tools")) {
      return Status::InvalidArgument(
          "'" + root_ +
          "' is not a pkgstream checkout (no src/ and tools/ directories)");
    }
    Status walked = WalkSources();
    if (!walked.ok()) return walked;

    CheckAllowMarkers();
    CheckRouteBatchClone();
    CheckTechniqueMatrix();
    CheckIsaConfinement();
    CheckHotpathTokens();
    CheckBaselines();

    std::sort(report_.findings.begin(), report_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    return std::move(report_);
  }

 private:
  void Fail(const std::string& rule, const std::string& file, size_t line,
            const std::string& message) {
    report_.findings.push_back(Finding{rule, file, line, message});
  }

  /// Collects every C++ source file under the scanned roots, sorted for
  /// deterministic output. Unknown files are included, not skipped — a
  /// brand-new TU is subject to every rule from its first commit.
  Status WalkSources() {
    const char* const roots[] = {"src", "tests", "bench", "tools",
                                 "examples"};
    std::vector<fs::path> paths;
    for (const char* dir : roots) {
      const fs::path base = fs::path(root_) / dir;
      if (!fs::is_directory(base)) continue;  // examples/ may be absent
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".inl") {
          paths.push_back(entry.path());
        }
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      auto bytes = ReadFileBytes(p);
      if (!bytes.ok()) return bytes.status();
      SourceFile f;
      f.rel = p.lexically_relative(root_).generic_string();
      f.raw = std::move(*bytes);
      f.scrubbed = Scrub(f.raw, /*keep_comments=*/false);
      f.no_strings = Scrub(f.raw, /*keep_comments=*/true);
      files_.push_back(std::move(f));
    }
    report_.files_scanned = files_.size();
    return Status::OK();
  }

  const SourceFile* FindFile(const std::string& rel) const {
    for (const SourceFile& f : files_) {
      if (f.rel == rel) return &f;
    }
    return nullptr;
  }

  /// True when `line` (1-based) of `file` is covered by a well-formed
  /// allow marker for `rule` (the syntax in kMarkerPrefix, e.g.
  /// "lint:allow(hotpath-tokens): why"). A marker covers its own line and
  /// the two lines below it — the comment-above-the-statement idiom.
  /// Markers are detected on string-scrubbed text, so they must live in
  /// comments.
  bool HasAllowMarker(const SourceFile& file, size_t line,
                      const std::string& rule) const {
    const std::string needle = kMarkerPrefix + rule + ")";
    const size_t first = line > 2 ? line - 2 : 1;
    size_t pos = 0;
    for (size_t l = 1; l < first; ++l) {
      pos = file.no_strings.find('\n', pos);
      if (pos == std::string::npos) return false;
      ++pos;
    }
    for (size_t l = first; l <= line; ++l) {
      const size_t eol = file.no_strings.find('\n', pos);
      const std::string text = file.no_strings.substr(
          pos, eol == std::string::npos ? std::string::npos : eol - pos);
      if (text.find(needle) != std::string::npos) return true;
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
    return false;
  }

  /// Every allow marker must name a registered rule and carry a
  /// justification after the closing parenthesis. Anything else is a
  /// finding: a typoed rule name would otherwise silently allow nothing
  /// (or, worse, a future rule).
  void CheckAllowMarkers() {
    for (const SourceFile& f : files_) {
      size_t pos = 0;
      while ((pos = f.no_strings.find(kMarkerPrefix, pos)) !=
             std::string::npos) {
        const size_t line = LineOfOffset(f.no_strings, pos);
        const size_t name_start = pos + kMarkerPrefix.size();
        const size_t close = f.no_strings.find(')', name_start);
        const size_t eol = f.no_strings.find('\n', name_start);
        pos = name_start;
        if (close == std::string::npos || (eol != std::string::npos && close > eol)) {
          Fail("hotpath-tokens", f.rel, line,
               "malformed lint:allow marker (no closing parenthesis)");
          continue;
        }
        const std::string rule =
            f.no_strings.substr(name_start, close - name_start);
        bool known = false;
        for (const RuleInfo& r : kRules) {
          if (rule == r.name) known = true;
        }
        if (!known) {
          Fail("hotpath-tokens", f.rel, line,
               "lint:allow names unknown rule '" + rule + "'");
          continue;
        }
        // Justification: "): " followed by non-space text on the line.
        const size_t after = close + 1;
        const std::string rest = f.no_strings.substr(
            after, eol == std::string::npos ? std::string::npos : eol - after);
        const size_t colon = rest.find(':');
        bool justified = false;
        if (colon != std::string::npos) {
          for (size_t i = colon + 1; i < rest.size(); ++i) {
            if (!std::isspace(static_cast<unsigned char>(rest[i]))) {
              justified = true;
              break;
            }
          }
        }
        if (!justified) {
          Fail(rule, f.rel, line,
               "lint:allow(" + rule +
                   ") needs a justification: \"lint:allow(" + rule +
                   "): <why this site is exempt>\"");
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // route-batch-clone
  // -------------------------------------------------------------------------

  void CheckRouteBatchClone() {
    for (const SourceFile& f : files_) {
      if (f.rel.rfind("src/", 0) != 0) continue;
      const std::string& text = f.scrubbed;
      const std::string base_marker = ": public Partitioner";
      size_t pos = 0;
      while ((pos = text.find(base_marker, pos)) != std::string::npos) {
        const size_t head_end = pos;
        pos += base_marker.size();
        // Walk back to the introducing "class" keyword; a ';' or '}' in
        // between means this occurrence is not a class head.
        size_t head_start = text.rfind("class", head_end);
        if (head_start == std::string::npos) continue;
        const std::string between =
            text.substr(head_start, head_end - head_start);
        if (between.find(';') != std::string::npos ||
            between.find('}') != std::string::npos) {
          continue;
        }
        // Class name: first identifier after "class".
        size_t name_start = head_start + 5;
        while (name_start < text.size() &&
               std::isspace(static_cast<unsigned char>(text[name_start]))) {
          ++name_start;
        }
        size_t name_end = name_start;
        while (name_end < text.size() && IsIdentChar(text[name_end])) {
          ++name_end;
        }
        const std::string class_name =
            text.substr(name_start, name_end - name_start);
        // Body: the brace block after the base-clause.
        const size_t open = text.find('{', pos);
        if (open == std::string::npos) continue;
        size_t depth = 0;
        size_t close = open;
        for (; close < text.size(); ++close) {
          if (text[close] == '{') ++depth;
          if (text[close] == '}' && --depth == 0) break;
        }
        if (close >= text.size()) continue;  // unbalanced; other rules/compiler
        const std::string body = text.substr(open, close - open);
        const bool has_route_batch =
            [&] {
              size_t p = 0;
              while ((p = body.find("RouteBatch", p)) != std::string::npos) {
                if (IsWholeToken(body, p, 10)) return true;
                p += 10;
              }
              return false;
            }();
        const bool has_clone = body.find("Clone(") != std::string::npos;
        if (has_route_batch && !has_clone) {
          Fail("route-batch-clone", f.rel, LineOfOffset(text, head_start),
               "class " + class_name +
                   " overrides RouteBatch but not Clone(): a fused batch "
                   "loop without replica parity breaks ThreadedRuntime's "
                   "per-source replicas (partitioner.h contract)");
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // technique-matrix
  // -------------------------------------------------------------------------

  void CheckTechniqueMatrix() {
    const char* const factory = "src/partition/factory.h";
    const char* const matrix = "tests/partition_route_batch_test.cc";
    const SourceFile* factory_file = FindFile(factory);
    const SourceFile* matrix_file = FindFile(matrix);
    if (factory_file == nullptr) {
      Fail("technique-matrix", factory, 0,
           "anchor file missing: cannot enumerate Technique");
      return;
    }
    if (matrix_file == nullptr) {
      Fail("technique-matrix", matrix, 0,
           "anchor file missing: the RouteBatch equivalence matrix is gone");
      return;
    }
    const std::string& text = factory_file->scrubbed;
    const size_t enum_pos = text.find("enum class Technique");
    if (enum_pos == std::string::npos) {
      Fail("technique-matrix", factory, 0,
           "no 'enum class Technique' found");
      return;
    }
    const size_t open = text.find('{', enum_pos);
    const size_t close = text.find('}', open);
    if (open == std::string::npos || close == std::string::npos) {
      Fail("technique-matrix", factory, LineOfOffset(text, enum_pos),
           "cannot parse the Technique enumerator block");
      return;
    }
    size_t found = 0;
    for (size_t i = open; i < close; ++i) {
      if (text[i] == 'k' && IsIdentChar(text[i + 1]) &&
          (i == 0 || !IsIdentChar(text[i - 1]))) {
        size_t end = i;
        while (end < close && IsIdentChar(text[end])) ++end;
        const std::string name = text.substr(i, end - i);
        ++found;
        if (matrix_file->raw.find("Technique::" + name) == std::string::npos) {
          Fail("technique-matrix", factory, LineOfOffset(text, i),
               "Technique::" + name +
                   " is not exercised by the scalar-vs-batch equivalence "
                   "matrix in " + std::string(matrix) +
                   " — add it to the technique sweep");
        }
        i = end;
      }
    }
    if (found == 0) {
      Fail("technique-matrix", factory, LineOfOffset(text, enum_pos),
           "the Technique enum declares no enumerators — parse drift?");
    }
  }

  // -------------------------------------------------------------------------
  // isa-confinement
  // -------------------------------------------------------------------------

  void CheckIsaConfinement() {
    for (const SourceFile& f : files_) {
      bool allowed = false;
      for (const char* ok : kIsaAllowedFiles) {
        if (f.rel == ok) allowed = true;
      }
      if (allowed) continue;
      for (const char* token : kIsaTokens) {
        const size_t pos = f.scrubbed.find(token);
        if (pos != std::string::npos) {
          Fail("isa-confinement", f.rel, LineOfOffset(f.scrubbed, pos),
               std::string("vector-ISA token '") + token +
                   "' outside the designated SIMD TUs (" +
                   "hash_avx2.cc / hash_avx512.cc / hash_simd_avx2_inl.h): "
                   "only those are compiled with -mavx2/-mavx512*, anywhere "
                   "else this SIGILLs on older hosts; route new kernels "
                   "through the dispatch layer in common/simd.h");
          break;  // one finding per file is enough signal
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // hotpath-tokens
  // -------------------------------------------------------------------------

  void CheckHotpathTokens() {
    for (const SourceFile& f : files_) {
      if (!IsHotpathFile(f.rel)) continue;
      for (const char* token : kHotpathTokens) {
        const size_t len = std::string(token).size();
        size_t pos = 0;
        while ((pos = f.scrubbed.find(token, pos)) != std::string::npos) {
          if (!IsWholeToken(f.scrubbed, pos, len)) {
            pos += len;
            continue;
          }
          const size_t line = LineOfOffset(f.scrubbed, pos);
          if (!HasAllowMarker(f, line, "hotpath-tokens")) {
            Fail("hotpath-tokens", f.rel, line,
                 std::string("'") + token +
                     "' in a routing hot-path file: no heap allocation, "
                     "locking, or libc randomness on the per-message path "
                     "(annotate genuinely cold sites with "
                     "\"lint:allow(hotpath-tokens): <why>\")");
          }
          pos += len;
        }
      }
    }
  }

  // -------------------------------------------------------------------------
  // baseline-schema + baseline-manifest
  // -------------------------------------------------------------------------

  void CheckBaselines() {
    const fs::path dir = fs::path(root_) / "bench" / "baselines";
    const std::string rel_dir = "bench/baselines";
    if (!fs::is_directory(dir)) {
      Fail("baseline-manifest", rel_dir, 0,
           "bench/baselines/ is missing — the repro gate has nothing to "
           "check against");
      return;
    }
    std::vector<fs::path> entries;
    for (const auto& entry : fs::directory_iterator(dir)) {
      entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());

    std::set<std::string> stems;
    for (const fs::path& p : entries) {
      const std::string name = p.filename().string();
      if (name == "README.md") continue;
      if (p.extension() != ".json") {
        // Fail closed: a stray file here is either a misplaced baseline
        // (dead weight that looks like coverage) or clutter.
        Fail("baseline-schema", rel_dir + "/" + name, 0,
             "unknown file in bench/baselines/ (only <bench>.json and "
             "README.md belong here)");
        continue;
      }
      stems.insert(p.stem().string());
      CheckBaselineSchema(p, rel_dir + "/" + name);
    }

    // Manifest wiring, both directions.
    auto cmake = ReadFileBytes(fs::path(root_) / "CMakeLists.txt");
    auto gate =
        ReadFileBytes(fs::path(root_) / "tests" / "repro_gate_test.cc");
    if (!cmake.ok()) {
      Fail("baseline-manifest", "CMakeLists.txt", 0,
           "anchor file missing: cannot verify the repro pipeline list");
      return;
    }
    if (!gate.ok()) {
      Fail("baseline-manifest", "tests/repro_gate_test.cc", 0,
           "anchor file missing: cannot verify the kBaselines manifest");
      return;
    }
    for (const std::string& stem : stems) {
      if (cmake->find(stem) == std::string::npos) {
        Fail("baseline-manifest", rel_dir + "/" + stem + ".json", 0,
             "baseline is not referenced by CMakeLists.txt (add the bench "
             "to PKGSTREAM_REPRO_BENCHES so `ctest -L repro` runs it)");
      }
      if (gate->find("\"" + stem + "\"") == std::string::npos) {
        Fail("baseline-manifest", rel_dir + "/" + stem + ".json", 0,
             "baseline is not in the kBaselines audit manifest of "
             "tests/repro_gate_test.cc (its invariant count is unguarded)");
      }
    }
    // Reverse: every manifest entry must have a committed file.
    const std::string& gate_text = *gate;
    size_t pos = 0;
    while ((pos = gate_text.find("{\"bench_", pos)) != std::string::npos) {
      const size_t name_start = pos + 2;
      const size_t name_end = gate_text.find('"', name_start);
      pos = name_end == std::string::npos ? gate_text.size() : name_end;
      if (name_end == std::string::npos) break;
      const std::string stem =
          gate_text.substr(name_start, name_end - name_start);
      if (stems.find(stem) == stems.end()) {
        Fail("baseline-manifest", "tests/repro_gate_test.cc",
             LineOfOffset(gate_text, name_start),
             "manifest entry '" + stem +
                 "' has no committed baseline file in bench/baselines/");
      }
    }
  }

  void CheckBaselineSchema(const fs::path& path, const std::string& rel) {
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      Fail("baseline-schema", rel, 0, "unreadable: " + bytes.status().ToString());
      return;
    }
    auto doc = JsonValue::Parse(*bytes);
    if (!doc.ok()) {
      Fail("baseline-schema", rel, 0,
           "does not parse as strict JSON: " + doc.status().ToString());
      return;
    }
    const std::string stem = path.stem().string();
    if (doc->StringOr("bench", "") != stem) {
      Fail("baseline-schema", rel, 0,
           "\"bench\" is '" + doc->StringOr("bench", "?") +
               "' but the filename says '" + stem +
               "' — bench_check resolves siblings by filename");
    }
    if (doc->NumberOr("schema_version", -1) != 1) {
      Fail("baseline-schema", rel, 0,
           "\"schema_version\" must be 1 (bench/report.h "
           "kReportSchemaVersion)");
    }
    const JsonValue* invariants = doc->Find("invariants");
    if (invariants == nullptr || !invariants->is_array() ||
        invariants->size() == 0) {
      Fail("baseline-schema", rel, 0,
           "\"invariants\" must be a non-empty array — a baseline with no "
           "declared shape claims gates nothing");
    }
    const JsonValue* captured = doc->FindObject("captured");
    const JsonValue* metrics =
        captured != nullptr ? captured->FindObject("metrics") : nullptr;
    if (metrics == nullptr || metrics->members().empty()) {
      Fail("baseline-schema", rel, 0,
           "\"captured.metrics\" must be a non-empty object — metric "
           "agreement is half of what the gate checks");
    }
    const JsonValue* tolerance = doc->Find("tolerance");
    if (tolerance != nullptr && !tolerance->is_number()) {
      Fail("baseline-schema", rel, 0, "\"tolerance\" must be a number");
    }
  }

  const std::string kMarkerPrefix = std::string("lint:") + "allow(";

  std::string root_;
  std::vector<SourceFile> files_;
  Report report_;
};

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> rules(std::begin(kRules),
                                           std::end(kRules));
  return rules;
}

std::string ScrubSource(const std::string& text) {
  return Scrub(text, /*keep_comments=*/false);
}

Result<Report> RunLint(const std::string& root) {
  return Linter(root).Run();
}

JsonValue ReportToJson(const Report& report) {
  JsonValue doc = JsonValue::Object();
  doc.Set("files_scanned",
          JsonValue::Number(static_cast<double>(report.files_scanned)));
  JsonValue findings = JsonValue::Array();
  for (const Finding& f : report.findings) {
    JsonValue item = JsonValue::Object();
    item.Set("file", JsonValue::Str(f.file));
    item.Set("line", JsonValue::Number(static_cast<double>(f.line)));
    item.Set("message", JsonValue::Str(f.message));
    item.Set("rule", JsonValue::Str(f.rule));
    findings.Append(std::move(item));
  }
  doc.Set("findings", std::move(findings));
  JsonValue rules = JsonValue::Array();
  for (const RuleInfo& r : Rules()) {
    rules.Append(JsonValue::Str(r.name));
  }
  doc.Set("rules", std::move(rules));
  return doc;
}

}  // namespace lint
}  // namespace pkgstream
