// Copyright 2026 The pkgstream Authors.
// pkgstream_lint: a project-specific static-analysis pass enforcing the
// repo invariants that no compiler or generic linter can express. The
// rules are the contracts the routing hot path rests on (see
// docs/ANALYSIS.md "The project lint" for the rationale and the policy for
// adding rules):
//
//   route-batch-clone      every Partitioner subclass that overrides
//                          RouteBatch also overrides Clone() — a fused
//                          batch loop without replica parity silently
//                          breaks ThreadedRuntime's per-source replicas.
//   technique-matrix       every Technique enumerator in factory.h appears
//                          in tests/partition_route_batch_test.cc, the
//                          scalar-vs-batch equivalence matrix — a new
//                          technique cannot skip the bit-equality gate.
//   isa-confinement        vector-ISA tokens (<immintrin.h>, _mm256_*,
//                          _mm512_*, __m256*, __m512*) appear only in the
//                          designated per-ISA TUs that CMake builds with
//                          -mavx2 / -mavx512*; anywhere else they produce
//                          illegal-instruction crashes on older hosts.
//   hotpath-tokens         the routing hot-path files carry no heap
//                          allocation, locking, or libc-rand tokens; known
//                          cold-path exceptions are annotated in place with
//                          "lint:allow(hotpath-tokens): <why>".
//   baseline-schema        every bench/baselines/*.json parses strictly
//                          and matches the bench_check baseline schema
//                          (bench == filename, schema_version, non-empty
//                          invariants, captured metrics).
//   baseline-manifest      every committed baseline is wired into the
//                          repro gate twice: the CMake PKGSTREAM_REPRO_
//                          BENCHES pipeline and the repro_gate_test
//                          kBaselines audit manifest (and every manifest
//                          entry has a file) — a baseline outside the gate
//                          is dead weight that looks like coverage.
//
// The lint fails closed: unknown files in scanned directories are scanned
// (a brand-new TU with intrinsics fails isa-confinement), unknown files in
// bench/baselines/ are findings, unreadable anchor files (factory.h, the
// equivalence test, CMakeLists.txt) are findings, and a root that is not a
// pkgstream checkout is a hard error, not a pass.

#ifndef PKGSTREAM_TOOLS_PKGSTREAM_LINT_LIB_H_
#define PKGSTREAM_TOOLS_PKGSTREAM_LINT_LIB_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace pkgstream {
namespace lint {

/// \brief One rule violation.
struct Finding {
  std::string rule;     ///< rule slug, e.g. "route-batch-clone"
  std::string file;     ///< path relative to the linted root
  size_t line = 0;      ///< 1-based; 0 = whole-file / tree-level finding
  std::string message;  ///< what is wrong and how to fix it
};

/// \brief Static description of one registered rule.
struct RuleInfo {
  const char* name;
  const char* summary;
};

/// \brief The registered rules, in the order they run.
const std::vector<RuleInfo>& Rules();

/// \brief Result of one lint run.
struct Report {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  size_t files_scanned = 0;       ///< source files walked (not baselines)
};

/// \brief Runs every rule over the repository checkout at `root`.
///
/// A Status failure means the tree could not be linted at all (root is not
/// a pkgstream checkout); rule violations and missing anchor files are
/// findings in the returned report, never silent passes.
Result<Report> RunLint(const std::string& root);

/// \brief Machine-readable form, deterministic for a given report:
/// {"files_scanned": N, "findings": [{"file","line","message","rule"}...],
///  "rules": [names...]}.
JsonValue ReportToJson(const Report& report);

/// \brief Strips comments and string/char literal contents (replaced with
/// spaces, newlines preserved) so token rules cannot fire on prose.
/// Exposed for tests.
std::string ScrubSource(const std::string& text);

}  // namespace lint
}  // namespace pkgstream

#endif  // PKGSTREAM_TOOLS_PKGSTREAM_LINT_LIB_H_
