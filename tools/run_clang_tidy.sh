#!/usr/bin/env bash
# Copyright 2026 The pkgstream Authors.
# Runs the committed .clang-tidy gate over the first-party translation
# units, against the compile_commands.json that CMake exports into the
# build directory. Usage:
#
#   tools/run_clang_tidy.sh [BUILD_DIR]      # default: build
#
# Scope: src/, bench/, tools/ .cc files. tests/ is excluded on purpose —
# gtest's macro expansion trips bugprone-* checks inside TEST() bodies that
# no source change here can fix; the tests are covered by -Wall/-Wextra,
# the sanitizer matrix, and pkgstream_lint instead.
#
# Exit codes: 0 clean; 1 findings (warnings-as-errors); 2 environment not
# usable (no clang-tidy binary, no compile database) — distinct so CI and
# humans can tell "the gate failed" from "the gate never ran".
set -u

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY_BIN' not found on PATH." >&2
  echo "Install clang-tidy (e.g. 'apt-get install clang-tidy') or set" >&2
  echo "CLANG_TIDY=/path/to/clang-tidy. The gate did NOT run." >&2
  exit 2
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "run_clang_tidy: no compile database at '$DB'." >&2
  echo "Configure first: cmake -B $BUILD_DIR -S . (the top-level" >&2
  echo "CMakeLists.txt exports compile_commands.json unconditionally)." >&2
  echo "The gate did NOT run." >&2
  exit 2
fi

# Only TUs the compile database knows about: a file that never builds in
# this configuration (e.g. hash_avx512.cc without PKGSTREAM_BUILD_AVX512)
# has no flags to check it with.
FILES=()
while IFS= read -r f; do
  case "$f" in
    "$REPO_ROOT"/src/*|"$REPO_ROOT"/bench/*|"$REPO_ROOT"/tools/*)
      FILES+=("$f") ;;
  esac
done < <(grep -o '"file": *"[^"]*"' "$DB" | sed 's/.*"file": *"//; s/"$//' |
         sort -u)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: compile database lists no src/bench/tools TUs." >&2
  exit 2
fi

echo "run_clang_tidy: checking ${#FILES[@]} translation units with" \
     "$("$TIDY_BIN" --version | head -1)"

STATUS=0
for f in "${FILES[@]}"; do
  if ! "$TIDY_BIN" --quiet -p "$BUILD_DIR" "$f"; then
    STATUS=1
  fi
done

if [ "$STATUS" -eq 0 ]; then
  echo "run_clang_tidy: clean (${#FILES[@]} TUs, warnings-as-errors)"
else
  echo "run_clang_tidy: findings above — fix them or (rarely) add a" >&2
  echo "NOLINT(check-name) with a justification comment." >&2
fi
exit "$STATUS"
